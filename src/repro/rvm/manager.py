"""The Resource View Manager facade.

Ties together the Data Source Proxy, the Content2iDM converters, the
Replica&Indexes module (with the Resource View Catalog) and the
Synchronization Manager, exactly as drawn in the paper's Figure 4. The
iQL query processor runs on top of this class.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import obs
from ..core.errors import DataSourceError
from ..core.identity import ViewId
from ..core.resource_view import ResourceView
from ..pushops import PushBus
from .catalog import ResourceViewCatalog
from .indexes import IndexingPolicy, IndexSet
from .proxy import DataSourcePlugin, DataSourceProxy
from .sync import SourceReport, SynchronizationManager


@dataclass
class SyncReport:
    """The combined report of one full synchronization pass.

    A pass over flaky sources is *reportable*, not all-or-nothing:
    sources that could not be reached appear with ``skipped=True`` and
    their error, sources that lost individual views carry them in
    ``errors``, and everything reachable was indexed normally.
    """

    sources: dict[str, SourceReport] = field(default_factory=dict)

    @property
    def views_total(self) -> int:
        return sum(r.views_total for r in self.sources.values())

    @property
    def total_seconds(self) -> float:
        return sum(r.total_seconds for r in self.sources.values())

    @property
    def sources_skipped(self) -> list[str]:
        """Authorities that could not be scanned at all, sorted."""
        return sorted(a for a, r in self.sources.items() if r.skipped)

    @property
    def errors(self) -> dict[str, list[str]]:
        """Authority → survived errors (skipped sources included)."""
        return {a: list(r.errors)
                for a, r in self.sources.items() if r.errors}

    @property
    def is_degraded(self) -> bool:
        return any(r.is_degraded for r in self.sources.values())

    def __getitem__(self, authority: str) -> SourceReport:
        return self.sources[authority]


class ResourceViewManager:
    """The RVM: register plugins, synchronize, and serve views.

    The typical life cycle::

        rvm = ResourceViewManager()
        rvm.register_plugin(FilesystemPlugin(vfs, content_converter=conv))
        rvm.register_plugin(ImapPlugin(server, content_converter=conv))
        report = rvm.sync_all()          # scan + index everything
        rvm.subscribe_all()              # notifications where supported
        ...
        rvm.poll_and_process()           # periodic polling for the rest
    """

    def __init__(self, *, infinite_group_window: int = 256,
                 policy: "IndexingPolicy | None" = None,
                 resilience=None):
        self.proxy = DataSourceProxy()
        self.catalog = ResourceViewCatalog()
        self.indexes = IndexSet(infinite_group_window=infinite_group_window,
                                policy=policy)
        self.bus = PushBus()
        #: optional :class:`~repro.resilience.ResilienceHub`; when set,
        #: every registered plugin is wrapped in a source guard (retry,
        #: backoff, circuit breaker) at the proxy boundary.
        self.resilience = resilience
        self.sync = SynchronizationManager(
            self.proxy, self.catalog, self.indexes, bus=self.bus,
            infinite_group_window=infinite_group_window,
        )
        self._register_index_gauges()

    def _register_index_gauges(self) -> None:
        """Expose every structure's size as ``index.*`` gauges.

        Callback gauges evaluate only when telemetry is snapshotted and
        hold this RVM weakly, so indexing pays nothing and a discarded
        dataspace's series vanish on their own. Each structure's
        existing ``stats()``/size accessors are the single source of
        truth — the gauges just read them.
        """
        def _entry_counters(rvm: "ResourceViewManager"):
            indexes = rvm.indexes
            return {
                "name": lambda: indexes.name_index.stats(),
                "tuple": lambda: indexes.tuple_index.stats(),
                "content": lambda: indexes.content_index.stats(),
            }

        for key in ("name", "tuple", "content"):
            obs.gauge_callback(
                "index.entries",
                lambda rvm, k=key: _entry_counters(rvm)[k]().entries,
                owner=self, labels={"index": key},
            )
            obs.gauge_callback(
                "index.bytes",
                lambda rvm, k=key: _entry_counters(rvm)[k]().bytes_estimate,
                owner=self, labels={"index": key},
            )
        obs.gauge_callback(
            "index.entries", lambda rvm: len(rvm.indexes.group_replica),
            owner=self, labels={"index": "group"},
        )
        obs.gauge_callback(
            "index.bytes",
            lambda rvm: rvm.indexes.group_replica.size_bytes(),
            owner=self, labels={"index": "group"},
        )
        obs.gauge_callback(
            "index.entries", lambda rvm: len(rvm.catalog),
            owner=self, labels={"index": "catalog"},
        )
        obs.gauge_callback(
            "index.bytes", lambda rvm: rvm.catalog.size_bytes(),
            owner=self, labels={"index": "catalog"},
        )

    # -- setup ------------------------------------------------------------------

    def register_plugin(self, plugin: DataSourcePlugin) -> None:
        if self.resilience is not None:
            plugin = self.resilience.wrap(plugin)
        self.proxy.register(plugin)

    def attach_durability(self, sink) -> None:
        """Attach a durability sink (WAL capture) to the mutation path.

        ``sink`` is any object with ``record_upsert(view, raw_content)``
        and ``record_remove(uri)`` — in practice a
        :class:`repro.durability.DurabilityManager`. Attach it *before*
        the first sync so the log covers the initial scan.
        """
        self.sync.durability = sink

    @property
    def durability(self):
        """The attached durability sink (None when not durable)."""
        return self.sync.durability

    # -- synchronization ----------------------------------------------------------

    def sync_all(self) -> SyncReport:
        """Scan every registered data source (initial indexing pass).

        An unreachable source does not abort the pass: its report is
        marked ``skipped`` with the error, and the remaining sources
        are indexed normally (``SyncReport.is_degraded`` flags it).
        """
        report = SyncReport()
        for authority in self.proxy.authorities():
            try:
                report.sources[authority] = self.sync.scan_source(authority)
            except DataSourceError as error:
                source = SourceReport(authority=authority, skipped=True)
                source.errors.append(str(error))
                report.sources[authority] = source
        return report

    # -- resilience ---------------------------------------------------------------

    def health_snapshot(self) -> dict[str, dict[str, object]]:
        """Per-source guard state (empty without a resilience hub)."""
        if self.resilience is None:
            return {}
        return self.resilience.health_snapshot()

    def sync_source(self, authority: str) -> SourceReport:
        return self.sync.scan_source(authority)

    def subscribe_all(self) -> dict[str, bool]:
        return self.sync.subscribe_all()

    def poll_and_process(self) -> int:
        """One polling round: poll all sources, apply queued changes."""
        self.sync.poll_all()
        return self.sync.process_pending()

    def process_notifications(self) -> int:
        """Apply changes queued by notification events."""
        return self.sync.process_pending()

    # -- view access -----------------------------------------------------------------

    def view(self, view_id: ViewId | str) -> ResourceView | None:
        """The live view for an id: from the registry, else the plugin."""
        uri = view_id if isinstance(view_id, str) else view_id.uri
        view = self.sync.live_views.get(uri)
        if view is not None:
            return view
        return self.proxy.resolve(ViewId.parse(uri))

    def views(self, uris: list[str]) -> list[ResourceView]:
        out = []
        for uri in uris:
            view = self.view(uri)
            if view is not None:
                out.append(view)
        return out

    @property
    def registered_count(self) -> int:
        return len(self.catalog)

    # -- statistics ---------------------------------------------------------------------

    def index_size_report(self) -> dict[str, int]:
        """Table 3's columns: four structures plus the RV catalog."""
        report = dict(self.indexes.size_report())
        report["catalog"] = self.catalog.size_bytes()
        report["total"] = sum(report.values())
        report["net_input"] = self.indexes.net_input_bytes
        return report
