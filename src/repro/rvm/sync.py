"""The Synchronization Manager.

"When a new data source is registered at the RVM, the Synchronization
Manager will analyze the data found on that data source and send each
resource view definition to the Replica&Indexes Module. ... The
Synchronization Manager will also poll the data sources regularly ...
Furthermore, if the data sources support notification events, [it] will
subscribe to these notifications."

The scan times each view's processing in the three phases the paper's
Figure 5 reports:

* **data source access** — forcing the view's components (reading the
  underlying file / fetching the message); for remote sources the
  plugin's simulated latency is accounted here too;
* **catalog insert** — registering the view in the Resource View
  Catalog;
* **component indexing** — feeding the four index/replica structures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from .. import obs
from ..core.errors import ComponentError, DataSourceError
from ..core.identity import ViewId
from ..core.resource_view import ResourceView
from ..pushops import ChangeEvent, ChangeKind, ComponentKind, PushBus
from .catalog import ResourceViewCatalog
from .indexes import IndexSet
from .proxy import DataSourceProxy

#: Classes whose views are *base items* of a data source (Table 2 counts
#: files&folders, emails, email folders and attachments as base items,
#: regardless of how their ids are spelled).
BASE_CLASSES = frozenset({
    "file", "folder", "xmlfile", "latexfile",
    "emailmessage", "emailfolder", "attachment",
    "relation", "reldb", "tuple",
})

#: Classes marking views derived from XML content (Table 2's "XML" column).
XML_DERIVED_CLASSES = frozenset({"xmldoc", "xmlelem", "xmltext"})

#: Classes marking views derived from LaTeX content.
LATEX_DERIVED_CLASSES = frozenset({
    "latex_document", "latex_section", "latex_meta", "latex_text",
    "environment", "figure", "texref",
})


@dataclass
class SourceReport:
    """Per-data-source scan statistics (one row of Table 2 / Figure 5)."""

    authority: str
    views_total: int = 0
    views_base: int = 0
    views_derived_xml: int = 0
    views_derived_latex: int = 0
    views_derived_other: int = 0
    access_seconds: float = 0.0            # measured component forcing
    access_simulated_seconds: float = 0.0  # plugin latency model
    catalog_seconds: float = 0.0
    indexing_seconds: float = 0.0
    #: per-view failures survived during the scan (degraded, not fatal)
    errors: list[str] = field(default_factory=list)
    #: True when the source could not be scanned at all this pass
    skipped: bool = False

    @property
    def views_derived(self) -> int:
        return (self.views_derived_xml + self.views_derived_latex
                + self.views_derived_other)

    @property
    def is_degraded(self) -> bool:
        return self.skipped or bool(self.errors)

    @property
    def total_seconds(self) -> float:
        return (self.access_seconds + self.access_simulated_seconds
                + self.catalog_seconds + self.indexing_seconds)


class SynchronizationManager:
    """Scans, polls and reacts to notifications."""

    def __init__(self, proxy: DataSourceProxy, catalog: ResourceViewCatalog,
                 indexes: IndexSet, *, bus: PushBus | None = None,
                 infinite_group_window: int = 256):
        self.proxy = proxy
        self.catalog = catalog
        self.indexes = indexes
        self.bus = bus if bus is not None else PushBus()
        self.infinite_group_window = infinite_group_window
        #: live view objects by URI, so queries can go back to the
        #: original (lazily computed) components.
        self.live_views: dict[str, ResourceView] = {}
        #: optional durability sink (:class:`repro.durability.DurabilityManager`):
        #: when attached, every view indexed or unregistered here is
        #: captured as typed WAL records *after* the in-memory mutation.
        self.durability = None
        self._pending: list[ViewId] = []
        self._subscribed: set[str] = set()
        # bus lag, live: queued change events not yet applied to the
        # indexes (evaluated only when telemetry is snapshotted)
        obs.gauge_callback("sync.pending_changes",
                           lambda sync: sync.pending_count, owner=self)
        obs.gauge_callback("sync.live_views",
                           lambda sync: len(sync.live_views), owner=self)

    # -- initial scan ------------------------------------------------------------

    def scan_source(self, authority: str) -> SourceReport:
        """Scan one data source: register and index every reachable view."""
        plugin = self.proxy.plugin_for(authority)
        report = SourceReport(authority=authority)
        simulated_before = plugin.data_source_seconds()

        t0 = time.perf_counter()
        roots = plugin.root_views()
        report.access_seconds += time.perf_counter() - t0

        seen: set[str] = set()
        stack: list[ResourceView] = list(reversed(roots))
        while stack:
            view = stack.pop()
            uri = view.view_id.uri
            if uri in seen:
                continue
            seen.add(uri)
            try:
                children = self._process_view(view, report)
            except (DataSourceError, ComponentError) as error:
                # one unreachable view must not abort the whole scan:
                # record it and keep indexing what the source can serve
                report.errors.append(f"{uri}: {error}")
                continue
            for child in reversed(children):
                if child.view_id.uri not in seen:
                    stack.append(child)

        report.access_simulated_seconds = (
            plugin.data_source_seconds() - simulated_before
        )
        if obs.enabled():
            obs.increment("sync.sources_scanned")
            obs.increment("sync.views_synced", report.views_total)
            obs.observe("sync.scan_seconds", report.total_seconds)
            if report.errors:
                obs.increment("sync.view_errors", len(report.errors))
            obs.emit_event(
                obs.WARNING if report.is_degraded else obs.INFO,
                "sync", "sync.source_scanned",
                f"scanned {authority}: {report.views_total} views",
                authority=authority, views=report.views_total,
                errors=len(report.errors),
                seconds=round(report.total_seconds, 6),
            )
        return report

    def _process_view(self, view: ResourceView,
                      report: SourceReport) -> list[ResourceView]:
        """Force, register and index one view; returns its children."""
        # Phase 1: data source access — forcing all four components.
        t0 = time.perf_counter()
        name = view.name
        view.tuple_component
        content = view.content
        size = len(content.text()) if content.is_finite else 0
        group = view.group
        if group.is_finite:
            children = list(group.related())
        else:
            children = group.take(self.infinite_group_window)
        report.access_seconds += time.perf_counter() - t0

        # Phase 2: catalog insert.
        uri = view.view_id.uri
        if view.class_name in BASE_CLASSES or "#" not in view.view_id.path:
            kind = "base"
        else:
            kind = "derived"
        t0 = time.perf_counter()
        self.catalog.register(view, kind=kind, size=size,
                              child_count=len(children))
        report.catalog_seconds += time.perf_counter() - t0

        # Phase 3: component indexing.
        t0 = time.perf_counter()
        raw_content = self.indexes.add_view(view)
        report.indexing_seconds += time.perf_counter() - t0

        is_new = uri not in self.live_views
        self.live_views[uri] = view
        report.views_total += 1
        if kind == "base":
            report.views_base += 1
        elif view.class_name in XML_DERIVED_CLASSES:
            report.views_derived_xml += 1
        elif view.class_name in LATEX_DERIVED_CLASSES:
            report.views_derived_latex += 1
        else:
            report.views_derived_other += 1
        self.bus.publish(ChangeEvent(
            view.view_id, ComponentKind.GROUP,
            ChangeKind.ADDED if is_new else ChangeKind.MODIFIED,
            payload=view,
        ))
        if self.durability is not None:
            self.durability.record_upsert(view, raw_content)
        return children

    # -- change handling ------------------------------------------------------------

    def subscribe_all(self) -> dict[str, bool]:
        """Subscribe to notifications on every source that supports them.

        Returns authority → supported. Unsupported sources must be
        synchronized via :meth:`poll_all`.
        """
        supported = {}
        for plugin in self.proxy.plugins():
            if plugin.authority in self._subscribed:
                supported[plugin.authority] = True
                continue
            ok = plugin.subscribe_changes(self._on_notification)
            supported[plugin.authority] = ok
            if ok:
                self._subscribed.add(plugin.authority)
        return supported

    def _on_notification(self, view_id: ViewId) -> None:
        self._pending.append(view_id)

    def poll_all(self) -> int:
        """Poll every source for changes; queues them for processing."""
        found = 0
        for plugin in self.proxy.plugins():
            for view_id in plugin.poll_changes():
                self._pending.append(view_id)
                found += 1
        if found:
            obs.increment("sync.changes_polled", found)
        return found

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def process_pending(self) -> int:
        """Apply all queued changes to the catalog and indexes.

        Duplicate ids queued by one burst of events (a file event also
        dirties its parent) collapse to one application each.
        """
        processed = 0
        deferred: list[ViewId] = []
        while self._pending:
            batch, self._pending = self._pending, []
            seen: set[str] = set()
            for view_id in batch:
                if view_id.uri in seen:
                    continue
                seen.add(view_id.uri)
                try:
                    self.apply_change(view_id)
                except (DataSourceError, ComponentError):
                    # source down mid-change: defer to the next call so
                    # the event is applied after recovery, not lost
                    deferred.append(view_id)
                    continue
                processed += 1
        self._pending.extend(deferred)
        if obs.enabled():
            if processed:
                obs.increment("sync.changes_processed", processed)
            if deferred:
                obs.increment("sync.changes_deferred", len(deferred))
                obs.emit_event(
                    obs.WARNING, "sync", "sync.changes_deferred",
                    f"{len(deferred)} change(s) deferred: source down",
                    deferred=len(deferred), processed=processed,
                )
        return processed

    def apply_change(self, view_id: ViewId) -> None:
        """Re-synchronize the subtree rooted at a changed view."""
        view = self.proxy.resolve(view_id)
        if view is None:
            self._unregister_subtree(view_id)
            return
        # Derived views under this root may have changed arbitrarily:
        # drop the old subtree, then re-scan the new one.
        old_subtree = self.indexes.group_replica.descendants(view_id)
        for uri in old_subtree:
            if "#" in uri:  # only derived views die with their root
                self._unregister_one(uri)
        report = SourceReport(authority=view_id.authority)
        seen: set[str] = set()
        stack = [view]
        while stack:
            current = stack.pop()
            uri = current.view_id.uri
            if uri in seen:
                continue
            seen.add(uri)
            children = self._process_view(current, report)
            for child in children:
                if child.view_id.uri not in seen:
                    stack.append(child)

    def _unregister_subtree(self, view_id: ViewId) -> None:
        doomed = {view_id.uri}
        doomed.update(
            uri for uri in self.indexes.group_replica.descendants(view_id)
            if uri.startswith(view_id.uri + "#")
            or uri.startswith(view_id.uri + "/")
        )
        for uri in doomed:
            self._unregister_one(uri)

    def _unregister_one(self, uri: str) -> None:
        self.catalog.unregister(uri)
        self.indexes.remove_view(uri)
        self.live_views.pop(uri, None)
        self.bus.publish(ChangeEvent(
            ViewId.parse(uri), ComponentKind.GROUP, ChangeKind.REMOVED,
        ))
        if self.durability is not None:
            self.durability.record_remove(uri)
