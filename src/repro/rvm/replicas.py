"""Component replicas.

"A Replica creates a copy of a component inside the RVM. For instance,
one strategy could be to replicate the group components of all resource
views ... queries referring to the group component can then be executed
exploiting the replicas only", avoiding lookups at the data source.

:class:`GroupReplica` replicates group components as adjacency lists.
URIs are dictionary-encoded through the process-wide URI dictionary, so
a node here carries the same dense **catalog id** as the same view in
the catalog keysets and the inverted index (the keyset refactor,
DESIGN.md §4j — the replica's private OID space is gone). A replica
edge costs 8 bytes, which is how the paper's group replica stays the
smallest structure of Table 3 at 3.5 MB. Reverse edges are kept too:
the prototype's forward expansion only needs the forward direction, but
the paper's future-work backward/bidirectional expansion [30] needs
parents, and so do our ablation benchmarks. Parent sets are compressed
:class:`~repro.rvm.keyset.KeySet` s.
"""

from __future__ import annotations

from typing import Iterator

from ..core.components import GroupComponent
from ..core.identity import ViewId
from ..core.resource_view import ResourceView
from .keyset import KeySet
from .uridict import global_uri_dictionary


class GroupReplica:
    """In-memory adjacency replica of group components."""

    def __init__(self, *, infinite_window: int = 256):
        #: how many members of an infinite group part are replicated
        self.infinite_window = infinite_window
        self._dictionary = global_uri_dictionary()
        self._set_children: dict[int, tuple[int, ...]] = {}
        self._seq_children: dict[int, tuple[int, ...]] = {}
        self._parents: dict[int, KeySet] = {}

    # -- interning ---------------------------------------------------------------

    def _oid(self, view_id: ViewId | str) -> int | None:
        uri = view_id if isinstance(view_id, str) else view_id.uri
        return self._dictionary.id_of(uri)

    # -- writes -----------------------------------------------------------------

    def add(self, view: ResourceView) -> None:
        self.add_group(view.view_id, view.group)

    def add_group(self, view_id: ViewId, group: GroupComponent) -> None:
        intern = self._dictionary.intern
        oid = intern(view_id.uri)
        if oid in self._set_children:
            self.remove(view_id.uri)
        set_part = (group.set_part.items() if group.set_part.is_finite
                    else group.set_part.take(self.infinite_window))
        seq_part = (group.seq_part.items() if group.seq_part.is_finite
                    else group.seq_part.take(self.infinite_window))
        set_oids = tuple(intern(v.view_id.uri) for v in set_part)
        seq_oids = tuple(intern(v.view_id.uri) for v in seq_part)
        self._set_children[oid] = set_oids
        self._seq_children[oid] = seq_oids
        for child in set_oids + seq_oids:
            parents = self._parents.get(child)
            if parents is None:
                parents = self._parents[child] = KeySet()
            parents.add(oid)

    def remove(self, view_id: ViewId | str) -> bool:
        oid = self._oid(view_id)
        if oid is None or oid not in self._set_children:
            return False
        for child in self._set_children[oid] + self._seq_children[oid]:
            parents = self._parents.get(child)
            if parents is not None:
                parents.discard(oid)
                if not parents:
                    del self._parents[child]
        del self._set_children[oid]
        del self._seq_children[oid]
        return True

    # -- reads --------------------------------------------------------------------

    def __contains__(self, view_id: object) -> bool:
        uri = view_id.uri if isinstance(view_id, ViewId) else view_id
        if not isinstance(uri, str):
            return False
        oid = self._dictionary.id_of(uri)
        return oid is not None and oid in self._set_children

    def __len__(self) -> int:
        return len(self._set_children)

    # id-space reads (the engine's expansion path) ------------------------------

    def children_ids(self, oid: int) -> tuple[int, ...]:
        """Directly related catalog ids (set part then sequence part)."""
        return (self._set_children.get(oid, ())
                + self._seq_children.get(oid, ()))

    def parent_ids(self, oid: int) -> KeySet:
        parents = self._parents.get(oid)
        return parents.copy() if parents is not None else KeySet()

    def descendant_ids(self, oid: int, *,
                       max_depth: int | None = None) -> KeySet:
        """Forward expansion entirely in id space."""
        seen = KeySet()
        if oid not in self._set_children and oid not in self._seq_children:
            return seen
        frontier = [(oid, 0)]
        while frontier:
            node, depth = frontier.pop()
            if max_depth is not None and depth >= max_depth:
                continue
            for child in (self._set_children.get(node, ())
                          + self._seq_children.get(node, ())):
                if seen.add(child):
                    frontier.append((child, depth + 1))
        return seen

    # URI-space reads (sync, durability records, external callers) --------------

    def children(self, view_id: ViewId | str) -> tuple[str, ...]:
        """All directly related URIs (set part then sequence part)."""
        oid = self._oid(view_id)
        if oid is None:
            return ()
        uri_of = self._dictionary.uri_of
        return tuple(uri_of(o) for o in self.children_ids(oid))

    def sequence_children(self, view_id: ViewId | str) -> tuple[str, ...]:
        oid = self._oid(view_id)
        if oid is None:
            return ()
        uri_of = self._dictionary.uri_of
        return tuple(uri_of(o) for o in self._seq_children.get(oid, ()))

    def parents(self, view_id: ViewId | str) -> set[str]:
        oid = self._oid(view_id)
        if oid is None:
            return set()
        uri_of = self._dictionary.uri_of
        return {uri_of(o) for o in self._parents.get(oid, ())}

    def descendants(self, view_id: ViewId | str, *,
                    max_depth: int | None = None) -> set[str]:
        """Forward expansion over the replica (no data-source access)."""
        start = self._oid(view_id)
        if start is None:
            return set()
        # `start` stays in the result only when an edge leads back to it
        # (a view on a cycle is indirectly related to itself).
        seen = self.descendant_ids(start, max_depth=max_depth)
        uri_of = self._dictionary.uri_of
        return {uri_of(o) for o in seen}

    def ancestors(self, view_id: ViewId | str) -> set[str]:
        """Backward expansion (extension beyond the 2006 prototype)."""
        start = self._oid(view_id)
        if start is None:
            return set()
        seen = KeySet()
        frontier = [start]
        while frontier:
            oid = frontier.pop()
            for parent in self._parents.get(oid, ()):
                if seen.add(parent):
                    frontier.append(parent)
        uri_of = self._dictionary.uri_of
        return {uri_of(o) for o in seen}

    def uris(self) -> Iterator[str]:
        uri_of = self._dictionary.uri_of
        return (uri_of(o) for o in self._set_children)

    # -- statistics -----------------------------------------------------------------

    def edge_count(self) -> int:
        return sum(len(s) + len(q) for s, q in
                   zip(self._set_children.values(),
                       self._seq_children.values()))

    def size_bytes(self) -> int:
        """Replica footprint: 8-byte ids per edge plus node headers.

        The URI↔id dictionary is the catalog's (every URI here is also
        registered there), so it is not double-counted; this mirrors how
        the prototype's group replica stays the smallest structure in
        the paper's Table 3. Reverse edges are compressed keysets and
        report their actual layout.
        """
        nodes = 16 * len(self._set_children)
        edges = 8 * self.edge_count()
        reverse = sum(p.size_bytes() for p in self._parents.values())
        return nodes + edges + reverse
