"""Saving and loading the RVM's state.

The 2006 prototype kept its catalog in Derby and its full-text indexes
in Lucene — both durable on disk, so iMeMex did not re-scan the whole
dataspace on every start. This module gives the reproduction the same
property: :func:`save_state` serializes the catalog and all four
index/replica structures to a directory of JSON-lines files, and
:func:`load_state` restores them into a fresh
:class:`~repro.rvm.manager.ResourceViewManager`.

A restored RVM answers every index-backed query immediately; live view
objects are *not* persisted (they are lazy handles into data sources) —
they re-resolve through the plugins on demand, exactly like after a
restart of the original system.

The format is deliberately plain: one ``manifest.json`` plus one
``.jsonl`` file per structure, with ISO-tagged datetimes. It is a
snapshot format, not a WAL — :mod:`repro.durability` layers the WAL,
checkpoints and crash recovery on top of it.

Catalog ids are **derived state** and never appear in a snapshot: every
structure serializes URIs, and the load path re-interns them through
the catalog and the index ``add`` methods, deterministically rebuilding
the id-keyed keysets (DESIGN.md §4j). A snapshot written before the
keyset refactor therefore loads unchanged, and two processes restoring
the same snapshot may assign different ids without disagreeing on any
query answer.

Snapshots are *crash-safe*: :func:`save_state` writes into a sibling
temporary directory, fsyncs every file, and atomically renames it into
place, so a crash mid-snapshot can never leave a half-written state
that :func:`load_state` would partially apply — the target either
holds the complete previous snapshot or the complete new one.
"""

from __future__ import annotations

import json
import os
import shutil
from datetime import date, datetime
from pathlib import Path
from typing import Any

from ..core.components import TupleComponent
from ..core.errors import StoreError
from ..core.identity import ViewId
from ..core.resource_view import ResourceView
from .manager import ResourceViewManager

FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# value (de)serialization
# ---------------------------------------------------------------------------

def encode_value(value: Any) -> Any:
    """JSON-encode one tuple-component value (datetimes ISO-tagged)."""
    if isinstance(value, datetime):
        return {"__dt__": value.isoformat()}
    if isinstance(value, date):
        return {"__date__": value.isoformat()}
    return value


def decode_value(value: Any) -> Any:
    """Invert :func:`encode_value`."""
    if isinstance(value, dict):
        if "__dt__" in value:
            return datetime.fromisoformat(value["__dt__"])
        if "__date__" in value:
            return date.fromisoformat(value["__date__"])
    return value


def _write_jsonl(path: Path, rows) -> int:
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row, ensure_ascii=False) + "\n")
            count += 1
        handle.flush()
        os.fsync(handle.fileno())
    return count


def _read_jsonl(path: Path):
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)


def _fsync_dir(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


# ---------------------------------------------------------------------------
# save
# ---------------------------------------------------------------------------

def save_state(rvm: ResourceViewManager, directory: str | Path, *,
               extra: dict | None = None) -> dict:
    """Serialize the RVM's catalog and indexes under ``directory``.

    The snapshot is staged in a temporary sibling directory and
    atomically renamed into place, replacing any previous snapshot at
    ``directory``. ``extra`` keys are merged into the manifest (the
    checkpointer records the WAL position this way). Returns the
    manifest that was written.
    """
    target = Path(directory)
    target.parent.mkdir(parents=True, exist_ok=True)
    staging = target.parent / f"{target.name}.tmp-{os.getpid()}"
    if staging.exists():
        shutil.rmtree(staging)
    staging.mkdir()
    try:
        manifest = _write_snapshot(rvm, staging, extra=extra)
        _fsync_dir(staging)
        _replace_directory(staging, target)
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    return manifest


def _replace_directory(staging: Path, target: Path) -> None:
    """Atomically swap ``staging`` into ``target``'s place.

    ``os.replace`` cannot overwrite a non-empty directory, so an
    existing snapshot is first moved aside and removed only after the
    new one is in place — a crash at any point leaves either the old
    or the new snapshot complete at ``target`` (or, in the narrow
    window between the two renames, the old one intact aside, which
    recovery treats as "no snapshot at the primary path" and the
    checkpoint pointer never references).
    """
    doomed = None
    if target.exists():
        doomed = target.parent / f"{target.name}.old-{os.getpid()}"
        if doomed.exists():
            shutil.rmtree(doomed)
        os.replace(target, doomed)
    os.replace(staging, target)
    _fsync_dir(target.parent)
    if doomed is not None:
        shutil.rmtree(doomed, ignore_errors=True)


def _write_snapshot(rvm: ResourceViewManager, base: Path, *,
                    extra: dict | None) -> dict:
    catalog_rows = (
        {
            "uri": record.uri, "name": record.name,
            "class_name": record.class_name, "authority": record.authority,
            "kind": record.kind, "size": record.size,
            "child_count": record.child_count,
        }
        for record in rvm.catalog.all_records()
    )
    counts = {"catalog": _write_jsonl(base / "catalog.jsonl", catalog_rows)}

    indexes = rvm.indexes
    counts["names"] = _write_jsonl(
        base / "names.jsonl",
        ({"uri": uri, "name": name}
         for uri, name in indexes.name_index.stored_items()),
    )
    # the content index is NOT a replica; persist its postings directly
    content = indexes.content_index
    content_rows = (
        {
            "term": term,
            "postings": [[content.key_of(p.doc), p.positions]
                         for p in content.postings(term)],
        }
        for term in sorted(content.terms_matching(lambda t: True))
    )
    counts["content_terms"] = _write_jsonl(base / "content.jsonl",
                                           content_rows)
    counts["content_docs"] = _write_jsonl(
        base / "content_docs.jsonl",
        ({"uri": content.key_of(doc), "length": content.doc_length(doc)}
         for doc in content.all_doc_ids()),
    )

    tuple_rows = []
    for uri in sorted(indexes.tuple_index.all_keys()):
        component = indexes.tuple_index.tuple_of(uri)
        assert component is not None
        tuple_rows.append({
            "uri": uri,
            "values": {k: encode_value(v)
                       for k, v in component.as_dict().items()},
        })
    counts["tuples"] = _write_jsonl(base / "tuples.jsonl", iter(tuple_rows))

    replica = indexes.group_replica
    group_rows = (
        {
            "uri": uri,
            "children": list(replica.children(uri)),
            "sequence": list(replica.sequence_children(uri)),
        }
        for uri in sorted(replica.uris())
    )
    counts["groups"] = _write_jsonl(base / "groups.jsonl", group_rows)

    manifest = {
        "format_version": FORMAT_VERSION,
        "net_input_bytes": indexes.net_input_bytes,
        "counts": counts,
    }
    if extra:
        manifest.update(extra)
    # the manifest is written last: a snapshot without one is invisible
    # to load_state, so a torn write can never be half-applied
    manifest_path = base / "manifest.json"
    with manifest_path.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps(manifest, indent=2))
        handle.flush()
        os.fsync(handle.fileno())
    return manifest


# ---------------------------------------------------------------------------
# load
# ---------------------------------------------------------------------------

def rvm_is_empty(rvm: ResourceViewManager) -> bool:
    """True when no structure of ``rvm`` holds any state yet."""
    indexes = rvm.indexes
    return (len(rvm.catalog) == 0
            and len(indexes.name_index) == 0
            and len(indexes.content_index) == 0
            and not indexes.tuple_index.all_keys()
            and len(indexes.group_replica) == 0)


def load_state(rvm: ResourceViewManager, directory: str | Path, *,
               merge: bool = False) -> dict:
    """Restore a snapshot written by :func:`save_state` into ``rvm``.

    The RVM must be freshly constructed: loading into a used RVM keeps
    its existing contents, silently merging the two states, which is
    almost never intended — pass ``merge=True`` to do it anyway.
    Returns the manifest.
    """
    base = Path(directory)
    manifest_path = base / "manifest.json"
    if not manifest_path.exists():
        raise StoreError(f"no saved state at {base}")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format_version") != FORMAT_VERSION:
        raise StoreError(
            f"unsupported snapshot version {manifest.get('format_version')}"
        )
    if not merge and not rvm_is_empty(rvm):
        raise StoreError(
            f"refusing to load snapshot {base} into a non-empty RVM "
            f"({len(rvm.catalog)} catalog entries): loading would merge "
            f"the two states; pass merge=True if that is intended"
        )

    for row in _read_jsonl(base / "catalog.jsonl"):
        view = ResourceView(
            row["name"], class_name=row["class_name"] or None,
            view_id=ViewId.parse(row["uri"]),
        )
        rvm.catalog.register(view, kind=row["kind"], size=row["size"],
                             child_count=row["child_count"])

    for row in _read_jsonl(base / "names.jsonl"):
        rvm.indexes.name_index.add(row["uri"], row["name"])

    content = rvm.indexes.content_index
    # register documents first so lengths and ids survive, then postings
    doc_lengths = {row["uri"]: row["length"]
                   for row in _read_jsonl(base / "content_docs.jsonl")}
    for uri in doc_lengths:
        content.add(uri, "")
    from ..fulltext.postings import PostingsList
    for row in _read_jsonl(base / "content.jsonl"):
        postings = content._terms.setdefault(  # noqa: SLF001 - snapshot restore
            row["term"], PostingsList()
        )
        for uri, positions in row["postings"]:
            doc = content.doc_of(uri)
            if doc is None:  # pragma: no cover - defensive
                continue
            for position in positions:
                postings.add(doc, position)
    # restore document lengths
    for uri, length in doc_lengths.items():
        doc = content.doc_of(uri)
        if doc is not None:
            content._doc_lengths[doc] = length  # noqa: SLF001

    for row in _read_jsonl(base / "tuples.jsonl"):
        values = {k: decode_value(v) for k, v in row["values"].items()}
        component = (TupleComponent.from_dict(values) if values
                     else TupleComponent.empty())
        rvm.indexes.tuple_index.add(row["uri"], component)

    replica = rvm.indexes.group_replica
    for row in _read_jsonl(base / "groups.jsonl"):
        children = [StubView(uri) for uri in row["children"]
                    if uri not in row["sequence"]]
        sequence = [StubView(uri) for uri in row["sequence"]]
        from ..core.components import GroupComponent, ViewSequence
        replica.add_group(
            ViewId.parse(row["uri"]),
            GroupComponent(set_part=ViewSequence(children),
                           seq_part=ViewSequence(sequence)),
        )

    rvm.indexes._net_input_bytes = manifest.get("net_input_bytes", 0)  # noqa: SLF001
    return manifest


class StubView:
    """A minimal view-shaped carrier of an id, for replica restoration."""

    __slots__ = ("view_id",)

    def __init__(self, uri: str):
        self.view_id = ViewId.parse(uri)
