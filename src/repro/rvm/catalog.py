"""The Resource View Catalog.

"All resource views managed are registered in that catalog." iMeMex
implements it on Apache Derby; we implement it on the embedded
relational store (:mod:`repro.store`), with secondary indexes on name,
class and authority. The catalog stores *metadata only* — components
live in their replicas/indexes — and its size contributes the
"RV Catalog" column of Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..core.identity import ViewId
from ..core.resource_view import ResourceView
from ..store import Column, Database, INT, TEXT
from .keyset import KeySet
from .uridict import global_uri_dictionary


@dataclass(frozen=True, slots=True)
class CatalogRecord:
    """One registered view's catalog metadata."""

    uri: str
    name: str
    class_name: str
    authority: str
    kind: str           # "base" (from a data source) or "derived" (converter)
    size: int           # content size in bytes when known
    child_count: int

    @property
    def view_id(self) -> ViewId:
        return ViewId.parse(self.uri)


class ResourceViewCatalog:
    """The catalog table plus typed accessors."""

    def __init__(self) -> None:
        self._db = Database("rv_catalog")
        self._table = self._db.create_table(
            "views",
            [
                Column("uri", TEXT, nullable=False),
                Column("name", TEXT),
                Column("class_name", TEXT),
                Column("authority", TEXT),
                Column("kind", TEXT),
                Column("size", INT),
                Column("child_count", INT),
            ],
            primary_key="uri",
        )
        self._table.create_index("by_name", "name", kind="hash")
        self._table.create_index("by_class", "class_name", kind="hash")
        self._table.create_index("by_authority", "authority", kind="hash")
        # compressed id sets mirroring the hash indexes: the query engine
        # consumes these directly (catalog scans, class/authority lookups)
        # with no per-URI string work. Ids are derived state — rebuilt on
        # recovery by re-registering, never persisted.
        self._ids = KeySet()
        self._ids_by_name: dict[str, KeySet] = {}
        self._ids_by_class: dict[str, KeySet] = {}
        self._ids_by_authority: dict[str, KeySet] = {}

    # -- registration ---------------------------------------------------------

    def register(self, view: ResourceView, *, kind: str,
                 size: int = 0, child_count: int = 0) -> CatalogRecord:
        """Register (or re-register) one view."""
        record = CatalogRecord(
            uri=view.view_id.uri,
            name=view.name,
            class_name=view.class_name or "",
            authority=view.view_id.authority,
            kind=kind,
            size=size,
            child_count=child_count,
        )
        row = {
            "uri": record.uri,
            "name": record.name,
            "class_name": record.class_name,
            "authority": record.authority,
            "kind": record.kind,
            "size": record.size,
            "child_count": record.child_count,
        }
        old = self._table.get(record.uri)
        if old is not None:
            self._table.update(record.uri, row)
        else:
            self._table.insert(row)
        # every registered view is interned: sync, snapshot load and WAL
        # recovery all pass here, so the engine's integer batches always
        # have a dictionary entry (ids are derived state — never saved,
        # always rebuilt deterministically from the catalog)
        view_id = global_uri_dictionary().intern(record.uri)
        if old is not None:
            self._drop_from_buckets(view_id, old)
        self._ids.add(view_id)
        self._bucket(self._ids_by_name, record.name).add(view_id)
        self._bucket(self._ids_by_class, record.class_name).add(view_id)
        self._bucket(self._ids_by_authority, record.authority).add(view_id)
        return record

    def unregister(self, view_id: ViewId | str) -> bool:
        uri = view_id if isinstance(view_id, str) else view_id.uri
        row = self._table.get(uri)
        if not self._table.delete(uri):
            return False
        interned = global_uri_dictionary().id_of(uri)
        if interned is not None:
            self._ids.discard(interned)
            if row is not None:
                self._drop_from_buckets(interned, row)
        return True

    @staticmethod
    def _bucket(buckets: dict[str, KeySet], key: str) -> KeySet:
        keyset = buckets.get(key)
        if keyset is None:
            keyset = buckets[key] = KeySet()
        return keyset

    def _drop_from_buckets(self, view_id: int, row: dict) -> None:
        for buckets, key in ((self._ids_by_name, row["name"]),
                             (self._ids_by_class, row["class_name"]),
                             (self._ids_by_authority, row["authority"])):
            keyset = buckets.get(key)
            if keyset is not None:
                keyset.discard(view_id)
                if not keyset:
                    del buckets[key]

    # -- lookups -----------------------------------------------------------------

    def __contains__(self, view_id: object) -> bool:
        uri = view_id.uri if isinstance(view_id, ViewId) else view_id
        return self._table.get(uri) is not None

    def __len__(self) -> int:
        return len(self._table)

    def get(self, view_id: ViewId | str) -> CatalogRecord | None:
        uri = view_id if isinstance(view_id, str) else view_id.uri
        row = self._table.get(uri)
        return self._record(row) if row is not None else None

    def by_name(self, name: str) -> list[CatalogRecord]:
        return [self._record(r) for r in self._table.lookup("by_name", name)]

    def by_class(self, class_name: str) -> list[CatalogRecord]:
        return [self._record(r)
                for r in self._table.lookup("by_class", class_name)]

    def by_authority(self, authority: str) -> list[CatalogRecord]:
        return [self._record(r)
                for r in self._table.lookup("by_authority", authority)]

    def all_records(self) -> Iterator[CatalogRecord]:
        return (self._record(row) for row in self._table.scan())

    def all_uris(self) -> list[str]:
        """Every registered URI in dictionary sort-key order.

        The order is plain lexicographic on the URI — URIs are unique,
        so no tie-break is needed — which is exactly the order of the
        dictionary's sort keys. Catalog scans can therefore bind their
        key column straight off this list without re-sorting.
        """
        return sorted(row["uri"] for row in self._table.scan())

    # id-space lookups (the engine's zero-copy path) --------------------------

    def all_ids(self) -> KeySet:
        return self._ids.copy()

    def ids_by_name(self, name: str) -> KeySet:
        keyset = self._ids_by_name.get(name)
        return keyset.copy() if keyset is not None else KeySet()

    def ids_by_class(self, class_name: str) -> KeySet:
        keyset = self._ids_by_class.get(class_name)
        return keyset.copy() if keyset is not None else KeySet()

    def ids_by_authority(self, authority: str) -> KeySet:
        keyset = self._ids_by_authority.get(authority)
        return keyset.copy() if keyset is not None else KeySet()

    @staticmethod
    def _record(row: dict) -> CatalogRecord:
        return CatalogRecord(
            uri=row["uri"], name=row["name"], class_name=row["class_name"],
            authority=row["authority"], kind=row["kind"], size=row["size"],
            child_count=row["child_count"],
        )

    # -- statistics -----------------------------------------------------------------

    def size_bytes(self) -> int:
        keysets = self._ids.size_bytes() + sum(
            ks.size_bytes()
            for buckets in (self._ids_by_name, self._ids_by_class,
                            self._ids_by_authority)
            for ks in buckets.values()
        )
        return self._db.size_bytes() + keysets

    def counts_by_authority(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for record in self.all_records():
            counts[record.authority] = counts.get(record.authority, 0) + 1
        return counts

    def counts_by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for record in self.all_records():
            counts[record.kind] = counts.get(record.kind, 0) + 1
        return counts
