"""The Resource View Catalog.

"All resource views managed are registered in that catalog." iMeMex
implements it on Apache Derby; we implement it on the embedded
relational store (:mod:`repro.store`), with secondary indexes on name,
class and authority. The catalog stores *metadata only* — components
live in their replicas/indexes — and its size contributes the
"RV Catalog" column of Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..core.identity import ViewId
from ..core.resource_view import ResourceView
from ..store import Column, Database, INT, TEXT
from .uridict import global_uri_dictionary


@dataclass(frozen=True, slots=True)
class CatalogRecord:
    """One registered view's catalog metadata."""

    uri: str
    name: str
    class_name: str
    authority: str
    kind: str           # "base" (from a data source) or "derived" (converter)
    size: int           # content size in bytes when known
    child_count: int

    @property
    def view_id(self) -> ViewId:
        return ViewId.parse(self.uri)


class ResourceViewCatalog:
    """The catalog table plus typed accessors."""

    def __init__(self) -> None:
        self._db = Database("rv_catalog")
        self._table = self._db.create_table(
            "views",
            [
                Column("uri", TEXT, nullable=False),
                Column("name", TEXT),
                Column("class_name", TEXT),
                Column("authority", TEXT),
                Column("kind", TEXT),
                Column("size", INT),
                Column("child_count", INT),
            ],
            primary_key="uri",
        )
        self._table.create_index("by_name", "name", kind="hash")
        self._table.create_index("by_class", "class_name", kind="hash")
        self._table.create_index("by_authority", "authority", kind="hash")

    # -- registration ---------------------------------------------------------

    def register(self, view: ResourceView, *, kind: str,
                 size: int = 0, child_count: int = 0) -> CatalogRecord:
        """Register (or re-register) one view."""
        record = CatalogRecord(
            uri=view.view_id.uri,
            name=view.name,
            class_name=view.class_name or "",
            authority=view.view_id.authority,
            kind=kind,
            size=size,
            child_count=child_count,
        )
        row = {
            "uri": record.uri,
            "name": record.name,
            "class_name": record.class_name,
            "authority": record.authority,
            "kind": record.kind,
            "size": record.size,
            "child_count": record.child_count,
        }
        if self._table.get(record.uri) is not None:
            self._table.update(record.uri, row)
        else:
            self._table.insert(row)
        # every registered view is interned: sync, snapshot load and WAL
        # recovery all pass here, so the engine's integer batches always
        # have a dictionary entry (ids are derived state — never saved,
        # always rebuilt deterministically from the catalog)
        global_uri_dictionary().intern(record.uri)
        return record

    def unregister(self, view_id: ViewId | str) -> bool:
        uri = view_id if isinstance(view_id, str) else view_id.uri
        return self._table.delete(uri)

    # -- lookups -----------------------------------------------------------------

    def __contains__(self, view_id: object) -> bool:
        uri = view_id.uri if isinstance(view_id, ViewId) else view_id
        return self._table.get(uri) is not None

    def __len__(self) -> int:
        return len(self._table)

    def get(self, view_id: ViewId | str) -> CatalogRecord | None:
        uri = view_id if isinstance(view_id, str) else view_id.uri
        row = self._table.get(uri)
        return self._record(row) if row is not None else None

    def by_name(self, name: str) -> list[CatalogRecord]:
        return [self._record(r) for r in self._table.lookup("by_name", name)]

    def by_class(self, class_name: str) -> list[CatalogRecord]:
        return [self._record(r)
                for r in self._table.lookup("by_class", class_name)]

    def by_authority(self, authority: str) -> list[CatalogRecord]:
        return [self._record(r)
                for r in self._table.lookup("by_authority", authority)]

    def all_records(self) -> Iterator[CatalogRecord]:
        return (self._record(row) for row in self._table.scan())

    def all_uris(self) -> list[str]:
        return [row["uri"] for row in self._table.scan()]

    @staticmethod
    def _record(row: dict) -> CatalogRecord:
        return CatalogRecord(
            uri=row["uri"], name=row["name"], class_name=row["class_name"],
            authority=row["authority"], kind=row["kind"], size=row["size"],
            child_count=row["child_count"],
        )

    # -- statistics -----------------------------------------------------------------

    def size_bytes(self) -> int:
        return self._db.size_bytes()

    def counts_by_authority(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for record in self.all_records():
            counts[record.authority] = counts.get(record.authority, 0) + 1
        return counts

    def counts_by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for record in self.all_records():
            counts[record.kind] = counts.get(record.kind, 0) + 1
        return counts
