"""Data source plugins: filesystem, IMAP email, RSS feeds.

"Currently we provide plugins for file systems, IMAP email servers and
RSS feeds" — so do we.
"""

from .fs_plugin import FilesystemPlugin
from .imap_plugin import ImapPlugin
from .rss_plugin import RssPlugin

__all__ = ["FilesystemPlugin", "ImapPlugin", "RssPlugin"]
