"""The filesystem data source plugin.

Wraps a :class:`~repro.datamodel.filesystem.FilesystemMapper` over a
virtual filesystem. Supports change notifications (the vfs event bus —
the analogue of the prototype's Mac OS X file events) and keeps a dirty
queue for pollers.
"""

from __future__ import annotations

from typing import Callable

from ...core.identity import ViewId
from ...core.resource_view import ResourceView
from ...datamodel.filesystem import ContentConverter, FilesystemMapper
from ...vfs import FsEvent, FsEventKind, VirtualFileSystem


class FilesystemPlugin:
    """Exposes a virtual filesystem as an initial iDM graph."""

    def __init__(self, vfs: VirtualFileSystem, *, authority: str = "fs",
                 content_converter: ContentConverter | None = None,
                 root_path: str = "/"):
        self.authority = authority
        self.vfs = vfs
        self.root_path = root_path
        self.mapper = FilesystemMapper(
            vfs, authority=authority, content_converter=content_converter
        )
        self._callbacks: list[Callable[[ViewId], None]] = []
        self._dirty: list[ViewId] = []
        vfs.events.subscribe(self._on_fs_event)

    # -- DataSourcePlugin contract ---------------------------------------------

    def root_views(self) -> list[ResourceView]:
        return [self.mapper.view_for(self.root_path)]

    def resolve(self, view_id: ViewId) -> ResourceView | None:
        path = view_id.path.split("#", 1)[0]
        if not self.vfs.exists(path):
            return None
        return self.mapper.view_for(path)

    def subscribe_changes(self, callback: Callable[[ViewId], None]) -> bool:
        self._callbacks.append(callback)
        return True

    def poll_changes(self) -> list[ViewId]:
        changes, self._dirty = self._dirty, []
        return changes

    def data_source_seconds(self) -> float:
        return 0.0  # local disk access is part of measured CPU time

    # -- event handling -------------------------------------------------------------

    def _on_fs_event(self, event: FsEvent) -> None:
        # Invalidate cached views of the changed path and its parents
        # (a new child changes the parent's group component).
        paths = [event.path]
        if event.old_path:
            paths.append(event.old_path)
        for path in paths:
            self.mapper.invalidate(path)
            parent = path.rsplit("/", 1)[0] or "/"
            self.mapper.invalidate(parent)
            view_id = ViewId(self.authority, path)
            self._dirty.append(view_id)
            for callback in list(self._callbacks):
                callback(view_id)

    def deleted(self, event: FsEvent) -> bool:
        return event.kind is FsEventKind.DELETED
