"""The RSS feed data source plugin.

RSS has no notification mechanism (the paper's footnote 5), so this
plugin is polling-only: ``subscribe_changes`` returns False, and
``poll_changes`` uses one :class:`~repro.rss.poller.FeedPoller` per feed
to detect new entries.

Each feed is exposed with the paper's alternative representation — the
feed *state* as an XML document view (name = feed URL, group
``Q = <V^xmldoc>`` of the current feed document).
"""

from __future__ import annotations

from typing import Callable

from ...core.components import GroupComponent
from ...core.identity import ViewId
from ...core.resource_view import ResourceView
from ...datamodel.xmlmodel import xml_to_views
from ...rss import FeedPoller, FeedServer


class RssPlugin:
    """Exposes the feeds of a feed server as an initial iDM graph."""

    def __init__(self, server: FeedServer, *, authority: str = "rss"):
        self.authority = authority
        self.server = server
        self._pollers: dict[str, FeedPoller] = {}
        self._versions: dict[str, int] = {}

    def _poller(self, url: str) -> FeedPoller:
        poller = self._pollers.get(url)
        if poller is None:
            poller = self._pollers[url] = FeedPoller(self.server, url)
        return poller

    def _feed_view(self, url: str) -> ResourceView:
        view_id = ViewId(self.authority, url)
        version = self._versions.get(url, 0)

        def group_provider() -> GroupComponent:
            xml_text = self.server.get(url)
            document_view = xml_to_views(
                xml_text, view_id.child(f"v{version}")
            )
            return GroupComponent.of_sequence([document_view])

        return ResourceView(
            name=url,
            group=group_provider,
            # The stream form would be class "rssatom"; the state form is
            # a plain view over an xmldoc (Table 1's alternative).
            class_name=None,
            view_id=view_id,
        )

    # -- DataSourcePlugin contract -----------------------------------------------

    def root_views(self) -> list[ResourceView]:
        return [self._feed_view(url) for url in self.server.urls()]

    def resolve(self, view_id: ViewId) -> ResourceView | None:
        url = view_id.path.split("#", 1)[0]
        if url not in self.server.urls():
            return None
        return self._feed_view(url)

    def subscribe_changes(self, callback: Callable[[ViewId], None]) -> bool:
        return False  # RSS servers push nothing; clients must poll

    def poll_changes(self) -> list[ViewId]:
        changed = []
        for url in self.server.urls():
            fresh = self._poller(url).poll()
            if fresh:
                self._versions[url] = self._versions.get(url, 0) + 1
                changed.append(ViewId(self.authority, url))
        return changed

    def data_source_seconds(self) -> float:
        return 0.0
