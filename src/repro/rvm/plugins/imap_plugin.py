"""The IMAP email data source plugin.

Exposes each mailbox of a simulated IMAP server as an Option-1 state
view (Section 4.4.1). All message access goes through the server's
latency-charged client API, so :meth:`data_source_seconds` reports the
simulated remote-access time — the dominant slice of email indexing in
the paper's Figure 5.
"""

from __future__ import annotations

from typing import Callable

from ...core.identity import ViewId
from ...core.resource_view import ResourceView
from ...datamodel.email_model import ContentConverter, inbox_state_view
from ...imapsim import EmailMessage, ImapServer


class ImapPlugin:
    """Exposes an IMAP server's mailboxes as an initial iDM graph."""

    def __init__(self, server: ImapServer, *, authority: str = "imap",
                 content_converter: ContentConverter | None = None):
        self.authority = authority
        self.server = server
        self.content_converter = content_converter
        self._callbacks: list[Callable[[ViewId], None]] = []
        self._dirty: list[ViewId] = []
        self._connected = False
        server.subscribe(self._on_new_message)

    def _ensure_connected(self) -> None:
        if not self._connected:
            self.server.connect()
            self._connected = True

    # -- DataSourcePlugin contract ---------------------------------------------

    def root_views(self) -> list[ResourceView]:
        self._ensure_connected()
        return [
            inbox_state_view(
                self.server, mailbox, authority=self.authority,
                content_converter=self.content_converter,
            )
            for mailbox in self.server.list_mailboxes()
        ]

    def resolve(self, view_id: ViewId) -> ResourceView | None:
        self._ensure_connected()
        mailbox = view_id.path.split("/", 1)[0].split("#", 1)[0]
        if mailbox not in self.server.list_mailboxes():
            return None
        return inbox_state_view(
            self.server, mailbox, authority=self.authority,
            content_converter=self.content_converter,
        )

    def subscribe_changes(self, callback: Callable[[ViewId], None]) -> bool:
        self._callbacks.append(callback)
        return True

    def poll_changes(self) -> list[ViewId]:
        changes, self._dirty = self._dirty, []
        return changes

    def data_source_seconds(self) -> float:
        return self.server.latency.simulated_seconds

    # -- notifications ---------------------------------------------------------------

    def _on_new_message(self, mailbox: str, message: EmailMessage) -> None:
        view_id = ViewId(self.authority, mailbox)
        self._dirty.append(view_id)
        for callback in list(self._callbacks):
            callback(view_id)
