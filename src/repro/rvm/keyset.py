"""Compressed sets of catalog ids (the roaring-bitmap discipline).

The URI dictionary (DESIGN.md §4h) gives every registered view a dense
``int64`` catalog id. This module gives the *sets* of those ids —
postings lists, catalog secondary sets, replica reached-sets — one
compressed representation with word-parallel algebra, so the index →
engine handoff moves ids, not strings.

A :class:`KeySet` partitions its members by ``id >> 16`` into chunks of
the 65 536-wide id ranges, and stores each chunk in whichever container
is smaller (the classic roaring layout [Chambi et al.]):

* **sparse** — a sorted ``array('q')`` of the members' low 16 bits
  (≤ :data:`SPARSE_MAX` entries, 8 bytes each);
* **dense** — one Python arbitrary-precision int used as a 65 536-bit
  bitmap (a fixed 8 KiB, bit *i* set ⇔ low value *i* present).

The promotion threshold is symmetric: a sparse chunk growing past
``SPARSE_MAX`` members becomes a bitmap, a bitmap shrinking to
``SPARSE_MAX`` members becomes an array — the container invariant is
``dense ⇔ count > SPARSE_MAX``, which every constructor and operator
re-establishes (binary operations therefore normalize their result
chunks too, keeping equality structural).

Word-parallel algebra falls out of the representation: AND/OR/ANDNOT of
two dense chunks is one big-int ``&``/``|``/``&~`` (CPython processes
30-bit digits per machine word), and the bitmap's population count is
``int.bit_count``. Sparse/sparse falls back to small sorted-set merges,
bounded by ``SPARSE_MAX`` elements per side.

Concurrency: a KeySet supports **one writer, many readers** with no
lock. Every mutation is copy-on-write at chunk granularity — a bitmap
is an immutable int by nature, and sparse mutation builds a *new*
array before a single atomic dict assignment — so a reader iterating
(or intersecting) mid-mutation sees each chunk either entirely before
or entirely after a given update, never a half-edited container. The
catalog and indexes mutate under the sync lock; query threads only
read.

Ids are derived state (never persisted): durability recovery re-interns
URIs through ``catalog.register`` and rebuilds every KeySet from the
re-assigned ids, so the on-disk formats stay id-free.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Iterable, Iterator

#: Members per chunk above which the container switches to a bitmap.
#: 4096 entries × 8 bytes = 32 KiB of sparse array ≥ the 8 KiB bitmap —
#: the break-even point of the roaring layout (scaled to 64-bit slots).
SPARSE_MAX = 4096

#: Width of one chunk's id range (the low 16 bits index the container).
CHUNK_BITS = 16
CHUNK_MASK = (1 << CHUNK_BITS) - 1
_BITMAP_BYTES = 1 << (CHUNK_BITS - 3)  # 8 KiB

#: ``_BYTE_BITS[b]`` lists the set-bit positions of byte value ``b`` —
#: bitmap iteration walks bytes, not bits, avoiding 65 536 bigint shifts.
_BYTE_BITS = tuple(
    tuple(bit for bit in range(8) if value >> bit & 1)
    for value in range(256)
)


def _array_to_bitmap(values: array, extra: int | None = None) -> int:
    """Pack sorted low values (plus ``extra``) into one bitmap int."""
    buffer = bytearray(_BITMAP_BYTES)
    for low in values:
        buffer[low >> 3] |= 1 << (low & 7)
    if extra is not None:
        buffer[extra >> 3] |= 1 << (extra & 7)
    return int.from_bytes(buffer, "little")


def _bitmap_to_array(bits: int) -> array:
    """Unpack a bitmap into the sorted low-value array."""
    out = array("q")
    extend = out.extend
    for byte_index, byte in enumerate(bits.to_bytes(_BITMAP_BYTES, "little")):
        if byte:
            base = byte_index << 3
            extend(base + bit for bit in _BYTE_BITS[byte])
    return out


def _iter_bitmap(bits: int) -> Iterator[int]:
    for byte_index, byte in enumerate(bits.to_bytes(_BITMAP_BYTES, "little")):
        if byte:
            base = byte_index << 3
            for bit in _BYTE_BITS[byte]:
                yield base + bit


def _normalize(bits: int):
    """Re-establish the container invariant for an op's bitmap result."""
    count = bits.bit_count()
    if count == 0:
        return None
    if count > SPARSE_MAX:
        return bits
    return _bitmap_to_array(bits)


def _chunk_count(container) -> int:
    return container.bit_count() if isinstance(container, int) \
        else len(container)


class KeySet:
    """A compressed, sorted set of int64 ids (one writer, many readers)."""

    __slots__ = ("_chunks", "_len")

    def __init__(self) -> None:
        #: chunk base (id >> 16) -> container (array('q') | int bitmap)
        self._chunks: dict[int, object] = {}
        self._len = 0

    # -- construction -------------------------------------------------------

    @classmethod
    def from_iterable(cls, ids: Iterable[int]) -> "KeySet":
        out = cls()
        add = out.add
        for i in ids:
            add(i)
        return out

    @classmethod
    def from_sorted(cls, ids: Iterable[int]) -> "KeySet":
        """Bulk build from non-decreasing ids (duplicates tolerated)."""
        out = cls()
        chunks = out._chunks
        base = None
        lows: list[int] = []
        total = 0
        for i in ids:
            b = i >> CHUNK_BITS
            if b != base:
                if lows:
                    chunks[base] = cls._seal(lows)
                    total += len(lows)
                base, lows = b, []
            low = i & CHUNK_MASK
            if not lows or lows[-1] != low:
                lows.append(low)
        if lows:
            chunks[base] = cls._seal(lows)
            total += len(lows)
        out._len = total
        return out

    @staticmethod
    def _seal(lows: list[int]):
        if len(lows) > SPARSE_MAX:
            return _array_to_bitmap(lows)  # type: ignore[arg-type]
        return array("q", lows)

    def copy(self) -> "KeySet":
        """O(chunks): containers are shared (they are never mutated in
        place — copy-on-write makes sharing safe)."""
        out = KeySet()
        out._chunks = dict(self._chunks)
        out._len = self._len
        return out

    # -- point operations ---------------------------------------------------

    def add(self, member: int) -> bool:
        """Insert; True when the member was new."""
        base = member >> CHUNK_BITS
        low = member & CHUNK_MASK
        chunk = self._chunks.get(base)
        if chunk is None:
            self._chunks[base] = array("q", (low,))
        elif isinstance(chunk, int):
            if chunk >> low & 1:
                return False
            self._chunks[base] = chunk | (1 << low)
        else:
            index = bisect_left(chunk, low)
            if index < len(chunk) and chunk[index] == low:
                return False
            if len(chunk) >= SPARSE_MAX:  # promote: array -> bitmap
                self._chunks[base] = _array_to_bitmap(chunk, low)
            else:  # copy-on-write insert
                fresh = chunk[:index]
                fresh.append(low)
                fresh.extend(chunk[index:])
                self._chunks[base] = fresh
        self._len += 1
        return True

    def discard(self, member: int) -> bool:
        """Remove; True when the member was present."""
        base = member >> CHUNK_BITS
        low = member & CHUNK_MASK
        chunk = self._chunks.get(base)
        if chunk is None:
            return False
        if isinstance(chunk, int):
            if not chunk >> low & 1:
                return False
            bits = chunk & ~(1 << low)
            if bits.bit_count() <= SPARSE_MAX:  # demote: bitmap -> array
                self._chunks[base] = _bitmap_to_array(bits)
            else:
                self._chunks[base] = bits
        else:
            index = bisect_left(chunk, low)
            if index >= len(chunk) or chunk[index] != low:
                return False
            if len(chunk) == 1:
                del self._chunks[base]
            else:
                self._chunks[base] = chunk[:index] + chunk[index + 1:]
        self._len -= 1
        return True

    def update(self, ids: Iterable[int]) -> None:
        for i in ids:
            self.add(i)

    # -- membership / iteration --------------------------------------------

    def __contains__(self, member: object) -> bool:
        if not isinstance(member, int):
            return False
        chunk = self._chunks.get(member >> CHUNK_BITS)
        if chunk is None:
            return False
        low = member & CHUNK_MASK
        if isinstance(chunk, int):
            return bool(chunk >> low & 1)
        index = bisect_left(chunk, low)
        return index < len(chunk) and chunk[index] == low

    def __len__(self) -> int:
        return self._len

    def cardinality(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    def iter_sorted(self) -> Iterator[int]:
        """Members in ascending order. Safe under concurrent mutation:
        the chunk list is snapshotted and each container is read whole."""
        chunks = self._chunks
        for base in sorted(chunks):
            chunk = chunks.get(base)
            if chunk is None:  # writer removed the chunk meanwhile
                continue
            high = base << CHUNK_BITS
            if isinstance(chunk, int):
                for low in _iter_bitmap(chunk):
                    yield high + low
            else:
                for low in chunk:
                    yield high + low

    __iter__ = iter_sorted

    def to_list(self) -> list[int]:
        """Materialize ascending (the zero-copy handoff's unboxed form)."""
        chunks = self._chunks
        out: list[int] = []
        extend = out.extend
        for base in sorted(chunks):
            chunk = chunks.get(base)
            if chunk is None:
                continue
            high = base << CHUNK_BITS
            if isinstance(chunk, int):
                extend(high + low for low in _iter_bitmap(chunk))
            elif high:
                extend(high + low for low in chunk.tolist())
            else:
                extend(chunk.tolist())
        return out

    def rank(self, member: int) -> int:
        """Members strictly below ``member`` (bisect_left semantics)."""
        base = member >> CHUNK_BITS
        low = member & CHUNK_MASK
        chunks = self._chunks
        total = 0
        for b in sorted(chunks):
            if b > base:
                break
            chunk = chunks.get(b)
            if chunk is None:
                continue
            if b < base:
                total += _chunk_count(chunk)
            elif isinstance(chunk, int):
                total += (chunk & ((1 << low) - 1)).bit_count()
            else:
                total += bisect_left(chunk, low)
        return total

    # -- set algebra --------------------------------------------------------

    def and_(self, other: "KeySet") -> "KeySet":
        out = KeySet()
        total = 0
        mine, theirs = self._chunks, other._chunks
        if len(theirs) < len(mine):
            mine, theirs = theirs, mine
        for base, a in mine.items():
            b = theirs.get(base)
            if b is None:
                continue
            merged = _and_chunks(a, b)
            if merged is not None:
                out._chunks[base] = merged
                total += _chunk_count(merged)
        out._len = total
        return out

    def or_(self, other: "KeySet") -> "KeySet":
        out = KeySet()
        total = 0
        mine, theirs = self._chunks, other._chunks
        for base, a in mine.items():
            b = theirs.get(base)
            merged = a if b is None else _or_chunks(a, b)
            out._chunks[base] = merged
            total += _chunk_count(merged)
        for base, b in theirs.items():
            if base not in mine:
                out._chunks[base] = b
                total += _chunk_count(b)
        out._len = total
        return out

    def andnot(self, other: "KeySet") -> "KeySet":
        out = KeySet()
        total = 0
        theirs = other._chunks
        for base, a in self._chunks.items():
            b = theirs.get(base)
            merged = a if b is None else _andnot_chunks(a, b)
            if merged is not None:
                out._chunks[base] = merged
                total += _chunk_count(merged)
        out._len = total
        return out

    __and__ = and_
    __or__ = or_
    __sub__ = andnot

    def isdisjoint(self, other: "KeySet") -> bool:
        mine, theirs = self._chunks, other._chunks
        if len(theirs) < len(mine):
            mine, theirs = theirs, mine
        for base, a in mine.items():
            b = theirs.get(base)
            if b is not None and _and_chunks(a, b) is not None:
                return False
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KeySet):
            return NotImplemented
        if self._len != other._len:
            return False
        # the container invariant makes representation canonical, but
        # array('q') == array('q') compares elementwise either way
        mine, theirs = self._chunks, other._chunks
        if len(mine) != len(theirs):
            return False
        for base, a in mine.items():
            b = theirs.get(base)
            if b is None or isinstance(a, int) != isinstance(b, int):
                return False
            if isinstance(a, int):
                if a != b:
                    return False
            elif a != b:
                return False
        return True

    __hash__ = None  # type: ignore[assignment]

    # -- accounting ---------------------------------------------------------

    def size_bytes(self) -> int:
        """Compressed footprint: 8 KiB per dense chunk, 8 bytes per
        sparse member, plus a fixed per-chunk header."""
        total = 0
        for chunk in self._chunks.values():
            if isinstance(chunk, int):
                total += _BITMAP_BYTES + 32
            else:
                total += 8 * len(chunk) + 32
        return total

    def chunk_layout(self) -> dict[str, int]:
        """Container census (for tests, stats and the bench report)."""
        dense = sum(1 for c in self._chunks.values() if isinstance(c, int))
        return {
            "chunks": len(self._chunks),
            "dense": dense,
            "sparse": len(self._chunks) - dense,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        layout = self.chunk_layout()
        return (f"KeySet(len={self._len}, chunks={layout['chunks']}, "
                f"dense={layout['dense']})")


# -- chunk-level kernels -----------------------------------------------------

def _and_chunks(a, b):
    a_dense, b_dense = isinstance(a, int), isinstance(b, int)
    if a_dense and b_dense:
        return _normalize(a & b)
    if a_dense:
        a, b = b, a  # a sparse, b dense
        b_dense = True
    if b_dense:
        out = array("q", (low for low in a if b >> low & 1))
        return out if len(out) else None
    # sparse ∩ sparse: bounded by SPARSE_MAX per side
    members = frozenset(a) & frozenset(b)
    if not members:
        return None
    return array("q", sorted(members))


def _or_chunks(a, b):
    a_dense, b_dense = isinstance(a, int), isinstance(b, int)
    if a_dense and b_dense:
        return a | b  # counts only grow: stays dense
    if a_dense or b_dense:
        bits, sparse = (a, b) if a_dense else (b, a)
        buffer = bytearray(bits.to_bytes(_BITMAP_BYTES, "little"))
        for low in sparse:
            buffer[low >> 3] |= 1 << (low & 7)
        return int.from_bytes(buffer, "little")
    merged = sorted(frozenset(a) | frozenset(b))
    if len(merged) > SPARSE_MAX:
        return _array_to_bitmap(merged)  # type: ignore[arg-type]
    return array("q", merged)


def _andnot_chunks(a, b):
    a_dense, b_dense = isinstance(a, int), isinstance(b, int)
    if a_dense and b_dense:
        return _normalize(a & ~b)
    if a_dense:  # dense minus sparse
        buffer = bytearray(a.to_bytes(_BITMAP_BYTES, "little"))
        for low in b:
            buffer[low >> 3] &= ~(1 << (low & 7)) & 0xFF
        return _normalize(int.from_bytes(buffer, "little"))
    if b_dense:  # sparse minus dense
        out = array("q", (low for low in a if not b >> low & 1))
        return out if len(out) else None
    members = frozenset(a) - frozenset(b)
    if not members:
        return None
    return array("q", sorted(members))
