"""The process-wide URI dictionary: dense integer ids for view URIs.

The batched engine (PR 4) moved ``Batch`` vectors of URI *strings*
through its operators: every sorted-merge compared strings and every
seen-set hashed them — the dominant cost on the engine benchmarks,
because view URIs share long prefixes (``imap://inbox/…``) and each
comparison re-walks them. Real columnar engines separate *identity*
from *representation*: operators move opaque dense integers, and only
the result boundary materializes surface syntax.

Two mappings live here:

* **ids** — ``intern(uri)`` assigns a dense, append-only ``int`` id in
  first-seen order. Ids are *stable for the process lifetime*: they
  never change, which makes them the handle future bitmap/roaring set
  representations can index by. Interning is thread-safe.
* **sort keys** — the engine's merge operators need keys whose integer
  order equals URI lexicographic order (the URI-ascending stream
  invariant). Ids arrive in sync order, not sorted order, so a second,
  lazily rebuilt indirection provides it: a :class:`DictionaryView`
  snapshot maps ``uri ↔ sort key`` where ``key = rank * KEY_GAP`` over
  the sorted URI list. The gap leaves room for URIs that surface
  *after* the snapshot (a mid-execution sync, an unregistered plugin
  root): they are placed between their neighbours' keys in a private
  per-view overlay, so one execution stays self-consistent without
  shifting anybody else's keys.

Rebuilding the view (a **remap**) happens lazily, at the first
execution after the interned set grew. Executions hold the snapshot
they started with — a remap never mutates a live view's arrays, it
replaces them — so cached result batches materialize correctly forever,
and ``view.is_stale`` tells a holder that fresher keys exist.

Durability: ids are *not* persisted. Snapshot load, WAL replay and
crash recovery all re-register views through the catalog, which
re-interns every URI — the dictionary is derived state, rebuilt
deterministically from the recovered catalog (see DESIGN.md §4h).

Since the keyset refactor (DESIGN.md §4j) the view also bridges **ids**
to sort keys: a remap builds two dense arrays — ``id → sort key`` and
``rank → id`` — so an index that hands the engine a
:class:`~repro.rvm.keyset.KeySet` of catalog ids gets its key column by
integer array indexing (:meth:`DictionaryView.keys_for_ids`), with *no
per-URI string hashing*. Only ids interned after the snapshot fall back
through the string overlay.

Telemetry (``query.dict.*``): ``query.dict.size`` (interned URIs),
``query.dict.lookups`` (string key/URI conversions),
``query.dict.handoffs`` (id→key conversions that bypassed strings), and
``query.dict.remaps`` (sort-view rebuilds) flow through
:mod:`repro.obs` at batch granularity — never per row.
"""

from __future__ import annotations

import threading
from array import array
from bisect import bisect_left, insort
from typing import Iterable, Sequence

from ..core.errors import StaleDictionaryError

#: Distance between consecutive base sort keys. A late-arriving URI is
#: placed by repeated halving of the gap between its neighbours, so one
#: gap absorbs ~log2(KEY_GAP) adversarially nested arrivals (and far
#: more in the typical scattered case) before a remap is forced.
KEY_GAP = 1 << 20


class DictionaryView:
    """An immutable sort-key snapshot of the dictionary.

    One execution captures one view: every key it hands out is
    consistent with every other key from the same view, and the arrays
    are never mutated afterwards (a dictionary remap *replaces* them),
    so result batches that outlive the execution — the service result
    cache replays them — keep materializing the right URIs.
    """

    __slots__ = ("_dictionary", "version", "_sorted_uris", "_key_of",
                 "_key_of_id", "_id_at_rank",
                 "_overlay", "_overlay_rev", "_overlay_sorted", "_lock")

    def __init__(self, dictionary: "UriDictionary", version: int,
                 sorted_uris: list[str], key_of: dict[str, int],
                 key_of_id: array, id_at_rank: array):
        self._dictionary = dictionary
        self.version = version
        self._sorted_uris = sorted_uris
        self._key_of = key_of
        #: dense id -> sort key (every id < len is covered: ids and the
        #: sorted URI list are two orderings of the same interned set)
        self._key_of_id = key_of_id
        #: rank -> id (inverts key // KEY_GAP back to the catalog id)
        self._id_at_rank = id_at_rank
        #: late arrivals: uri -> key, key -> uri, plus a sorted (uri,
        #: key) list for neighbour search. Small by construction.
        self._overlay: dict[str, int] = {}
        self._overlay_rev: dict[int, str] = {}
        self._overlay_sorted: list[tuple[str, int]] = []
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._sorted_uris) + len(self._overlay)

    @property
    def is_stale(self) -> bool:
        """True when the dictionary has remapped (or grown) since this
        view was captured — a fresh execution would see newer keys."""
        dictionary = self._dictionary
        return dictionary.version != self.version or dictionary.dirty

    # -- uri -> key ---------------------------------------------------------

    def key_for(self, uri: str) -> int:
        """The sort key of ``uri`` (key order == URI lexicographic
        order). Unknown URIs get an overlay key between their
        neighbours; an exhausted gap raises
        :class:`~repro.core.errors.StaleDictionaryError`."""
        key = self._key_of.get(uri)
        if key is not None:
            return key
        key = self._overlay.get(uri)
        if key is not None:
            return key
        return self._assign_overlay_key(uri)

    def keys_for_set(self, uris: Iterable[str]) -> array:
        """Sorted ``array('q')`` of keys for a URI set (a scan's
        sorted-batch source)."""
        key_of = self._key_of
        out = array("q", sorted(
            key_of[u] if u in key_of else self.key_for(u) for u in uris
        ))
        self._dictionary.count_lookups(len(out))
        return out

    def keys_in_order(self, uris: Sequence[str]) -> array:
        """Keys for an already-ordered URI sequence (unordered scans:
        pipeline order preserved, no sort)."""
        key_of = self._key_of
        out = array("q", (
            key_of[u] if u in key_of else self.key_for(u) for u in uris
        ))
        self._dictionary.count_lookups(len(out))
        return out

    # -- id <-> key (the zero-copy keyset handoff, DESIGN.md §4j) -----------

    def keys_for_ids(self, ids) -> array:
        """Sorted ``array('q')`` of sort keys for a set of catalog ids
        (a :class:`~repro.rvm.keyset.KeySet` or any iterable of ids).

        The common case — ids interned before this snapshot — is pure
        integer array indexing and never touches a URI string; only ids
        interned *after* the snapshot (a mid-execution sync) detour
        through the string overlay, and only those count as dictionary
        ``lookups``.
        """
        key_of_id = self._key_of_id
        n = len(key_of_id)
        id_list = ids.to_list() if hasattr(ids, "to_list") else list(ids)
        late: list[int] | None = None
        out: list[int] = []
        append = out.append
        for i in id_list:
            if 0 <= i < n:
                append(key_of_id[i])
            else:
                if late is None:
                    late = []
                late.append(i)
        if late:
            uri_of = self._dictionary.uri_of
            out.extend(self.key_for(uri_of(i)) for i in late)
            self._dictionary.count_lookups(len(late))
        out.sort()
        self._dictionary.count_handoffs(len(out))
        return array("q", out)

    def keys_in_order_ids(self, ids) -> array:
        """Keys for an already-ordered id sequence (order preserved)."""
        key_of_id = self._key_of_id
        n = len(key_of_id)
        out = array("q", (
            key_of_id[i] if 0 <= i < n else self.key_for_id(i)
            for i in ids
        ))
        self._dictionary.count_handoffs(len(out))
        return out

    def key_for_id(self, view_id: int) -> int:
        """One id's sort key (array hit, or overlay for late ids)."""
        key_of_id = self._key_of_id
        if 0 <= view_id < len(key_of_id):
            return key_of_id[view_id]
        return self.key_for(self._dictionary.uri_of(view_id))

    def id_for_key(self, key: int) -> int:
        """Invert a sort key to its catalog id (base rank or overlay)."""
        if key >= 0 and not key % KEY_GAP:
            rank = key // KEY_GAP
            id_at_rank = self._id_at_rank
            if rank < len(id_at_rank):
                return id_at_rank[rank]
        # overlay key: the self-heal in _assign_overlay_key interned the
        # URI, so an id exists (intern() is an idempotent lookup here)
        return self._dictionary.intern(self._overlay_rev[key])

    # -- key -> uri ---------------------------------------------------------

    def uri_for(self, key: int) -> str:
        """The URI a key stands for (base rank or overlay)."""
        if key >= 0 and not key % KEY_GAP:
            rank = key // KEY_GAP
            if rank < len(self._sorted_uris):
                return self._sorted_uris[rank]
        return self._overlay_rev[key]

    def uris_for(self, keys: Sequence[int]) -> tuple[str, ...]:
        """Materialize a key column back to URI strings (the result
        boundary — the only place strings reappear)."""
        sorted_uris = self._sorted_uris
        n = len(sorted_uris)
        out = tuple(
            sorted_uris[k // KEY_GAP]
            if k >= 0 and not k % KEY_GAP and k // KEY_GAP < n
            else self._overlay_rev[k]
            for k in keys
        )
        self._dictionary.count_lookups(len(out))
        return out

    # -- overlay ------------------------------------------------------------

    def _assign_overlay_key(self, uri: str) -> int:
        with self._lock:
            key = self._overlay.get(uri)
            if key is not None:  # lost a race: another thread placed it
                return key
            position = bisect_left(self._sorted_uris, uri)
            low = (position - 1) * KEY_GAP if position else -KEY_GAP
            high = (position * KEY_GAP if position < len(self._sorted_uris)
                    else len(self._sorted_uris) * KEY_GAP)
            # narrow by overlay members already placed in this gap
            for other, other_key in self._overlay_sorted:
                if low < other_key < high:
                    if other < uri:
                        low = other_key
                    else:
                        high = other_key
            key = (low + high) // 2
            if key == low or key == high:
                raise StaleDictionaryError(
                    f"sort-key gap exhausted placing {uri!r}; "
                    f"retry on a fresh dictionary view"
                )
            self._overlay[uri] = key
            self._overlay_rev[key] = uri
            insort(self._overlay_sorted, (uri, key))
        # self-heal: the *next* view gets this URI as a base key
        self._dictionary.intern(uri)
        return key


class UriDictionary:
    """Process-wide interner: URI ↔ dense stable id, plus the sort-key
    view factory. All methods are thread-safe."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._id_of: dict[str, int] = {}
        self._uri_of: list[str] = []
        self._view: DictionaryView | None = None
        self._dirty = True
        self.version = 0       # bumps on every remap
        self.remaps = 0
        self.lookups = 0
        self.handoffs = 0

    # -- interning ----------------------------------------------------------

    def intern(self, uri: str) -> int:
        """The dense id of ``uri``, assigning one on first sight."""
        existing = self._id_of.get(uri)
        if existing is not None:
            return existing
        with self._lock:
            existing = self._id_of.get(uri)
            if existing is not None:
                return existing
            new_id = len(self._uri_of)
            self._uri_of.append(uri)
            self._id_of[uri] = new_id
            self._dirty = True
            return new_id

    def intern_many(self, uris: Iterable[str]) -> None:
        for uri in uris:
            if uri not in self._id_of:
                self.intern(uri)

    def id_of(self, uri: str) -> int | None:
        return self._id_of.get(uri)

    def uri_of(self, view_id: int) -> str:
        return self._uri_of[view_id]

    def __len__(self) -> int:
        return len(self._uri_of)

    def __contains__(self, uri: str) -> bool:
        return uri in self._id_of

    @property
    def dirty(self) -> bool:
        """True when URIs were interned since the last remap."""
        return self._dirty

    # -- the sort-key view --------------------------------------------------

    def view(self) -> DictionaryView:
        """The current sort-key snapshot, remapping first if the
        interned set grew since the last one."""
        view = self._view
        if view is not None and not self._dirty:
            return view
        with self._lock:
            if self._view is None or self._dirty:
                self._remap_locked()
            return self._view

    def _remap_locked(self) -> None:
        sorted_uris = sorted(self._uri_of)
        key_of = {uri: rank * KEY_GAP
                  for rank, uri in enumerate(sorted_uris)}
        # the id bridge: ids are first-seen order, ranks are sorted
        # order — two permutations of the same set, so both arrays are
        # dense and total (no sentinel slots)
        id_of = self._id_of
        id_at_rank = array("q", (id_of[uri] for uri in sorted_uris))
        key_of_id = array("q", bytes(8 * len(sorted_uris)))
        for rank, view_id in enumerate(id_at_rank):
            key_of_id[view_id] = rank * KEY_GAP
        self.version += 1
        self.remaps += 1
        self._view = DictionaryView(self, self.version, sorted_uris, key_of,
                                    key_of_id, id_at_rank)
        self._dirty = False
        from .. import obs
        if obs.enabled():
            obs.increment("query.dict.remaps")
            obs.set_gauge("query.dict.size", len(sorted_uris))

    # -- telemetry ----------------------------------------------------------

    def count_lookups(self, amount: int) -> None:
        """Tally ``amount`` key/URI conversions (batch granularity)."""
        self.lookups += amount  # GIL-atomic enough for a statistic
        from .. import obs
        if obs.enabled():
            obs.increment("query.dict.lookups", amount)

    def count_handoffs(self, amount: int) -> None:
        """Tally ``amount`` id→key conversions that bypassed strings."""
        self.handoffs += amount
        from .. import obs
        if obs.enabled():
            obs.increment("query.dict.handoffs", amount)

    def stats(self) -> dict[str, int]:
        return {"size": len(self._uri_of), "remaps": self.remaps,
                "lookups": self.lookups, "handoffs": self.handoffs,
                "version": self.version}


#: The process-wide dictionary every dataspace in this process shares —
#: ids are identity, not ownership, so sharing across dataspaces is
#: harmless and keeps the engine's batch columns uniform.
GLOBAL_DICTIONARY = UriDictionary()


def global_uri_dictionary() -> UriDictionary:
    return GLOBAL_DICTIONARY
