"""The process-wide URI dictionary: dense integer ids for view URIs.

The batched engine (PR 4) moved ``Batch`` vectors of URI *strings*
through its operators: every sorted-merge compared strings and every
seen-set hashed them — the dominant cost on the engine benchmarks,
because view URIs share long prefixes (``imap://inbox/…``) and each
comparison re-walks them. Real columnar engines separate *identity*
from *representation*: operators move opaque dense integers, and only
the result boundary materializes surface syntax.

Two mappings live here:

* **ids** — ``intern(uri)`` assigns a dense, append-only ``int`` id in
  first-seen order. Ids are *stable for the process lifetime*: they
  never change, which makes them the handle future bitmap/roaring set
  representations can index by. Interning is thread-safe.
* **sort keys** — the engine's merge operators need keys whose integer
  order equals URI lexicographic order (the URI-ascending stream
  invariant). Ids arrive in sync order, not sorted order, so a second,
  lazily rebuilt indirection provides it: a :class:`DictionaryView`
  snapshot maps ``uri ↔ sort key`` where ``key = rank * KEY_GAP`` over
  the sorted URI list. The gap leaves room for URIs that surface
  *after* the snapshot (a mid-execution sync, an unregistered plugin
  root): they are placed between their neighbours' keys in a private
  per-view overlay, so one execution stays self-consistent without
  shifting anybody else's keys.

Rebuilding the view (a **remap**) happens lazily, at the first
execution after the interned set grew. Executions hold the snapshot
they started with — a remap never mutates a live view's arrays, it
replaces them — so cached result batches materialize correctly forever,
and ``view.is_stale`` tells a holder that fresher keys exist.

Durability: ids are *not* persisted. Snapshot load, WAL replay and
crash recovery all re-register views through the catalog, which
re-interns every URI — the dictionary is derived state, rebuilt
deterministically from the recovered catalog (see DESIGN.md §4h).

Telemetry (``query.dict.*``): ``query.dict.size`` (interned URIs),
``query.dict.lookups`` (batch key/URI conversions), and
``query.dict.remaps`` (sort-view rebuilds) flow through
:mod:`repro.obs` at batch granularity — never per row.
"""

from __future__ import annotations

import threading
from array import array
from bisect import bisect_left, insort
from typing import Iterable, Sequence

from ..core.errors import StaleDictionaryError

#: Distance between consecutive base sort keys. A late-arriving URI is
#: placed by repeated halving of the gap between its neighbours, so one
#: gap absorbs ~log2(KEY_GAP) adversarially nested arrivals (and far
#: more in the typical scattered case) before a remap is forced.
KEY_GAP = 1 << 20


class DictionaryView:
    """An immutable sort-key snapshot of the dictionary.

    One execution captures one view: every key it hands out is
    consistent with every other key from the same view, and the arrays
    are never mutated afterwards (a dictionary remap *replaces* them),
    so result batches that outlive the execution — the service result
    cache replays them — keep materializing the right URIs.
    """

    __slots__ = ("_dictionary", "version", "_sorted_uris", "_key_of",
                 "_overlay", "_overlay_rev", "_overlay_sorted", "_lock")

    def __init__(self, dictionary: "UriDictionary", version: int,
                 sorted_uris: list[str], key_of: dict[str, int]):
        self._dictionary = dictionary
        self.version = version
        self._sorted_uris = sorted_uris
        self._key_of = key_of
        #: late arrivals: uri -> key, key -> uri, plus a sorted (uri,
        #: key) list for neighbour search. Small by construction.
        self._overlay: dict[str, int] = {}
        self._overlay_rev: dict[int, str] = {}
        self._overlay_sorted: list[tuple[str, int]] = []
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._sorted_uris) + len(self._overlay)

    @property
    def is_stale(self) -> bool:
        """True when the dictionary has remapped (or grown) since this
        view was captured — a fresh execution would see newer keys."""
        dictionary = self._dictionary
        return dictionary.version != self.version or dictionary.dirty

    # -- uri -> key ---------------------------------------------------------

    def key_for(self, uri: str) -> int:
        """The sort key of ``uri`` (key order == URI lexicographic
        order). Unknown URIs get an overlay key between their
        neighbours; an exhausted gap raises
        :class:`~repro.core.errors.StaleDictionaryError`."""
        key = self._key_of.get(uri)
        if key is not None:
            return key
        key = self._overlay.get(uri)
        if key is not None:
            return key
        return self._assign_overlay_key(uri)

    def keys_for_set(self, uris: Iterable[str]) -> array:
        """Sorted ``array('q')`` of keys for a URI set (a scan's
        sorted-batch source)."""
        key_of = self._key_of
        out = array("q", sorted(
            key_of[u] if u in key_of else self.key_for(u) for u in uris
        ))
        self._dictionary.count_lookups(len(out))
        return out

    def keys_in_order(self, uris: Sequence[str]) -> array:
        """Keys for an already-ordered URI sequence (unordered scans:
        pipeline order preserved, no sort)."""
        key_of = self._key_of
        out = array("q", (
            key_of[u] if u in key_of else self.key_for(u) for u in uris
        ))
        self._dictionary.count_lookups(len(out))
        return out

    # -- key -> uri ---------------------------------------------------------

    def uri_for(self, key: int) -> str:
        """The URI a key stands for (base rank or overlay)."""
        if key >= 0 and not key % KEY_GAP:
            rank = key // KEY_GAP
            if rank < len(self._sorted_uris):
                return self._sorted_uris[rank]
        return self._overlay_rev[key]

    def uris_for(self, keys: Sequence[int]) -> tuple[str, ...]:
        """Materialize a key column back to URI strings (the result
        boundary — the only place strings reappear)."""
        sorted_uris = self._sorted_uris
        n = len(sorted_uris)
        out = tuple(
            sorted_uris[k // KEY_GAP]
            if k >= 0 and not k % KEY_GAP and k // KEY_GAP < n
            else self._overlay_rev[k]
            for k in keys
        )
        self._dictionary.count_lookups(len(out))
        return out

    # -- overlay ------------------------------------------------------------

    def _assign_overlay_key(self, uri: str) -> int:
        with self._lock:
            key = self._overlay.get(uri)
            if key is not None:  # lost a race: another thread placed it
                return key
            position = bisect_left(self._sorted_uris, uri)
            low = (position - 1) * KEY_GAP if position else -KEY_GAP
            high = (position * KEY_GAP if position < len(self._sorted_uris)
                    else len(self._sorted_uris) * KEY_GAP)
            # narrow by overlay members already placed in this gap
            for other, other_key in self._overlay_sorted:
                if low < other_key < high:
                    if other < uri:
                        low = other_key
                    else:
                        high = other_key
            key = (low + high) // 2
            if key == low or key == high:
                raise StaleDictionaryError(
                    f"sort-key gap exhausted placing {uri!r}; "
                    f"retry on a fresh dictionary view"
                )
            self._overlay[uri] = key
            self._overlay_rev[key] = uri
            insort(self._overlay_sorted, (uri, key))
        # self-heal: the *next* view gets this URI as a base key
        self._dictionary.intern(uri)
        return key


class UriDictionary:
    """Process-wide interner: URI ↔ dense stable id, plus the sort-key
    view factory. All methods are thread-safe."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._id_of: dict[str, int] = {}
        self._uri_of: list[str] = []
        self._view: DictionaryView | None = None
        self._dirty = True
        self.version = 0       # bumps on every remap
        self.remaps = 0
        self.lookups = 0

    # -- interning ----------------------------------------------------------

    def intern(self, uri: str) -> int:
        """The dense id of ``uri``, assigning one on first sight."""
        existing = self._id_of.get(uri)
        if existing is not None:
            return existing
        with self._lock:
            existing = self._id_of.get(uri)
            if existing is not None:
                return existing
            new_id = len(self._uri_of)
            self._uri_of.append(uri)
            self._id_of[uri] = new_id
            self._dirty = True
            return new_id

    def intern_many(self, uris: Iterable[str]) -> None:
        for uri in uris:
            if uri not in self._id_of:
                self.intern(uri)

    def id_of(self, uri: str) -> int | None:
        return self._id_of.get(uri)

    def uri_of(self, view_id: int) -> str:
        return self._uri_of[view_id]

    def __len__(self) -> int:
        return len(self._uri_of)

    def __contains__(self, uri: str) -> bool:
        return uri in self._id_of

    @property
    def dirty(self) -> bool:
        """True when URIs were interned since the last remap."""
        return self._dirty

    # -- the sort-key view --------------------------------------------------

    def view(self) -> DictionaryView:
        """The current sort-key snapshot, remapping first if the
        interned set grew since the last one."""
        view = self._view
        if view is not None and not self._dirty:
            return view
        with self._lock:
            if self._view is None or self._dirty:
                self._remap_locked()
            return self._view

    def _remap_locked(self) -> None:
        sorted_uris = sorted(self._uri_of)
        key_of = {uri: rank * KEY_GAP
                  for rank, uri in enumerate(sorted_uris)}
        self.version += 1
        self.remaps += 1
        self._view = DictionaryView(self, self.version, sorted_uris, key_of)
        self._dirty = False
        from .. import obs
        if obs.enabled():
            obs.increment("query.dict.remaps")
            obs.set_gauge("query.dict.size", len(sorted_uris))

    # -- telemetry ----------------------------------------------------------

    def count_lookups(self, amount: int) -> None:
        """Tally ``amount`` key/URI conversions (batch granularity)."""
        self.lookups += amount  # GIL-atomic enough for a statistic
        from .. import obs
        if obs.enabled():
            obs.increment("query.dict.lookups", amount)

    def stats(self) -> dict[str, int]:
        return {"size": len(self._uri_of), "remaps": self.remaps,
                "lookups": self.lookups, "version": self.version}


#: The process-wide dictionary every dataspace in this process shares —
#: ids are identity, not ownership, so sharing across dataspaces is
#: harmless and keeps the engine's batch columns uniform.
GLOBAL_DICTIONARY = UriDictionary()


def global_uri_dictionary() -> UriDictionary:
    return GLOBAL_DICTIONARY
