"""The Resource View Manager (Section 5.2 of the paper).

The RVM is "the central instance to managing resource views". It
consists of the four components the paper names:

1. **Data Source Proxy** (:mod:`proxy`, :mod:`plugins`) — connectivity
   to subsystems (filesystem, IMAP, RSS) exposing initial iDM graphs;
2. **Content2iDM Converters** (:mod:`converters`) — enrich the graph by
   converting content components (XML, LaTeX) into subgraphs;
3. **Replica & Indexes Module** (:mod:`indexes`, :mod:`replicas`,
   :mod:`catalog`) — the Resource View Catalog plus one index/replica
   per component kind;
4. **Synchronization Manager** (:mod:`sync`) — initial scans, polling
   and event-driven synchronization.

:class:`~repro.rvm.manager.ResourceViewManager` ties them together.
"""

from .catalog import CatalogRecord, ResourceViewCatalog
from .converters import default_content_converter
from .indexes import IndexingPolicy, IndexSet
from .manager import ResourceViewManager, SyncReport
from .proxy import DataSourcePlugin, DataSourceProxy
from .replicas import GroupReplica
from .uridict import DictionaryView, UriDictionary, global_uri_dictionary

__all__ = [
    "CatalogRecord", "ResourceViewCatalog", "default_content_converter",
    "IndexingPolicy", "IndexSet", "ResourceViewManager", "SyncReport",
    "DataSourcePlugin", "DataSourceProxy", "GroupReplica",
    "DictionaryView", "UriDictionary", "global_uri_dictionary",
]
