"""A from-scratch LaTeX structure parser.

The paper's Content2iDM converters include a LaTeX2iDM converter that
turns the *graph-structured* content of ``.tex`` files (sections,
subsections, figure environments, ``\\label``/``\\ref`` cross links) into
resource view subgraphs. This package provides the parsing substrate:
:func:`parse` produces a :class:`LatexDocument` structure tree with
resolved label→ref links.
"""

from .lexer import Token, TokenType, tokenize
from .structure import (
    Environment,
    LatexDocument,
    Paragraph,
    Reference,
    Section,
    StructureNode,
)
from .parser import parse

__all__ = [
    "Environment", "LatexDocument", "Paragraph", "Reference", "Section",
    "StructureNode", "Token", "TokenType", "tokenize", "parse",
]
