"""Tokenizer for LaTeX source.

Produces a flat token stream of commands, group delimiters, math spans
and text runs. Comments (``%`` to end of line) are dropped; escaped
specials (``\\%``, ``\\&``, ...) become text. The structure parser on top
only interprets the commands it knows and treats everything else as
text, which is the right robustness trade-off for personal documents.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

_ESCAPABLE = set("%&$#_{}~^\\ ")


class TokenType(enum.Enum):
    COMMAND = "command"        # \section, \label, ...
    BEGIN_GROUP = "begin"      # {
    END_GROUP = "end"          # }
    OPTION_START = "["         # [  (only meaningful after a command)
    OPTION_END = "]"           # ]
    MATH = "math"              # $...$ or $$...$$, verbatim body
    TEXT = "text"              # everything else


@dataclass(frozen=True, slots=True)
class Token:
    type: TokenType
    value: str
    line: int


def tokenize(source: str) -> list[Token]:
    """Tokenize LaTeX source into a list of tokens."""
    return list(_tokens(source))


def _tokens(source: str) -> Iterator[Token]:
    i = 0
    line = 1
    length = len(source)
    text_start = i
    text_parts: list[str] = []

    def flush_text(upto: int) -> Iterator[Token]:
        nonlocal text_parts
        pending = source[text_start:upto]
        if pending:
            text_parts.append(pending)
        if text_parts:
            merged = "".join(text_parts)
            text_parts = []
            if merged:
                yield Token(TokenType.TEXT, merged, line)

    while i < length:
        ch = source[i]
        if ch == "\\":
            next_ch = source[i + 1] if i + 1 < length else ""
            if next_ch in _ESCAPABLE and not next_ch.isalpha():
                # an escaped special: contributes literal text
                yield from flush_text(i)
                text_parts.append(next_ch if next_ch != "\\" else "\n")
                i += 2
                text_start = i
                continue
            yield from flush_text(i)
            j = i + 1
            while j < length and source[j].isalpha():
                j += 1
            if j == i + 1:
                # lone backslash followed by non-letter: treat as text
                text_parts.append(next_ch)
                i += 2 if next_ch else 1
                text_start = i
                continue
            name = source[i + 1:j]
            # swallow a trailing '*' (starred variants) into the name
            if j < length and source[j] == "*":
                name += "*"
                j += 1
            yield Token(TokenType.COMMAND, name, line)
            i = j
            text_start = i
        elif ch == "%":
            yield from flush_text(i)
            end = source.find("\n", i)
            i = length if end < 0 else end + 1
            line += 1 if end >= 0 else 0
            text_start = i
        elif ch == "{":
            yield from flush_text(i)
            yield Token(TokenType.BEGIN_GROUP, "{", line)
            i += 1
            text_start = i
        elif ch == "}":
            yield from flush_text(i)
            yield Token(TokenType.END_GROUP, "}", line)
            i += 1
            text_start = i
        elif ch == "[":
            yield from flush_text(i)
            yield Token(TokenType.OPTION_START, "[", line)
            i += 1
            text_start = i
        elif ch == "]":
            yield from flush_text(i)
            yield Token(TokenType.OPTION_END, "]", line)
            i += 1
            text_start = i
        elif ch == "$":
            yield from flush_text(i)
            double = source.startswith("$$", i)
            delim = "$$" if double else "$"
            start = i + len(delim)
            end = source.find(delim, start)
            if end < 0:
                # unbalanced math: treat the rest as math body
                end = length
            body = source[start:end]
            line += body.count("\n")
            yield Token(TokenType.MATH, body, line)
            i = min(end + len(delim), length)
            text_start = i
        else:
            if ch == "\n":
                line += 1
            i += 1
    yield from flush_text(length)
