"""Structure parser for LaTeX token streams.

Interprets the structural commands personal documents actually use —
``\\documentclass``, ``\\title``, ``\\author``, sectioning commands,
``\\begin``/``\\end`` environments, ``\\caption``, ``\\label``, ``\\ref``
— and treats everything else as text. After the walk, labels are
resolved so every :class:`Reference` points at its target section or
environment (the cross edges of the content graph).

The parser is deliberately forgiving: unbalanced environments close at
end of input, unknown commands contribute their arguments as text. A
converter over heterogeneous personal files cannot afford to reject a
document over a missing ``\\end{...}``.
"""

from __future__ import annotations

from .lexer import Token, TokenType, tokenize
from .structure import (
    Environment,
    LatexDocument,
    Paragraph,
    Reference,
    Section,
    StructureNode,
)

_SECTION_LEVELS = {
    "part": 0,
    "chapter": 0,
    "section": 1,
    "subsection": 2,
    "subsubsection": 3,
    "paragraph": 4,
}

#: Commands whose single argument is swallowed without contributing text.
_IGNORED_WITH_ARG = {
    "usepackage", "input", "include", "bibliography", "bibliographystyle",
    "pagestyle", "thispagestyle", "vspace", "hspace", "includegraphics",
    "cite", "bibitem", "footnote",
}

#: Commands that are dropped entirely (no argument).
_IGNORED_BARE = {
    "maketitle", "tableofcontents", "newpage", "clearpage", "noindent",
    "centering", "itemsep", "item", "hline",
}


class _TokenCursor:
    __slots__ = ("tokens", "pos")

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    @property
    def at_end(self) -> bool:
        return self.pos >= len(self.tokens)

    def peek(self) -> Token | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def read_group_text(self) -> str:
        """Read one ``{...}`` group and return its flattened text.

        Nested groups flatten; commands inside the group contribute their
        own group arguments' text (handles ``\\section{The \\emph{X}}``).
        If the next token is not a group, returns "".
        """
        token = self.peek()
        if token is None or token.type is not TokenType.BEGIN_GROUP:
            return ""
        self.next()
        depth = 1
        parts: list[str] = []
        while not self.at_end and depth > 0:
            token = self.next()
            if token.type is TokenType.BEGIN_GROUP:
                depth += 1
            elif token.type is TokenType.END_GROUP:
                depth -= 1
            elif token.type is TokenType.TEXT:
                parts.append(token.value)
            elif token.type is TokenType.MATH:
                parts.append(token.value)
            # commands inside a group: skip, their groups flatten naturally
        return _squash(" ".join(parts) if parts else "")

    def skip_option(self) -> None:
        """Skip a ``[...]`` optional argument if present."""
        token = self.peek()
        if token is None or token.type is not TokenType.OPTION_START:
            return
        depth = 0
        while not self.at_end:
            token = self.next()
            if token.type is TokenType.OPTION_START:
                depth += 1
            elif token.type is TokenType.OPTION_END:
                depth -= 1
                if depth == 0:
                    return


def _squash(text: str) -> str:
    return " ".join(text.split())


def parse(source: str) -> LatexDocument:
    """Parse LaTeX source into a :class:`LatexDocument`."""
    cursor = _TokenCursor(tokenize(source))
    document = LatexDocument()

    # Stack of open containers: the innermost receives new nodes.
    # Sections additionally track their level for auto-closing.
    containers: list[list[StructureNode]] = [document.body]
    section_stack: list[Section] = []
    environment_stack: list[Environment] = []
    text_buffer: list[str] = []

    def flush_text() -> None:
        if text_buffer:
            merged = _squash(" ".join(text_buffer))
            text_buffer.clear()
            if merged:
                containers[-1].append(Paragraph(merged))

    def open_section(level: int, title: str) -> None:
        flush_text()
        # close any environments opened inside the outgoing section scope
        while section_stack and section_stack[-1].level >= level:
            _close_section()
        section = Section(level=level, title=title)
        containers[-1].append(section)
        containers.append(section.body)
        section_stack.append(section)

    def _close_section() -> None:
        section_stack.pop()
        containers.pop()

    def open_environment(name: str) -> None:
        flush_text()
        env = Environment(name=name)
        containers[-1].append(env)
        containers.append(env.body)
        environment_stack.append(env)

    def close_environment(name: str) -> None:
        flush_text()
        # close intervening sections opened inside the environment (rare,
        # malformed input) and then the environment itself if it matches.
        for index in range(len(environment_stack) - 1, -1, -1):
            if environment_stack[index].name == name:
                while len(environment_stack) > index + 1:
                    environment_stack.pop()
                    containers.pop()
                environment_stack.pop()
                containers.pop()
                return
        # unmatched \end: ignore

    while not cursor.at_end:
        token = cursor.next()
        if token.type is TokenType.TEXT:
            text_buffer.append(token.value)
        elif token.type is TokenType.MATH:
            text_buffer.append(token.value)
        elif token.type in (TokenType.BEGIN_GROUP, TokenType.END_GROUP,
                            TokenType.OPTION_START, TokenType.OPTION_END):
            continue  # stray braces/brackets outside known commands
        elif token.type is TokenType.COMMAND:
            name = token.value.rstrip("*")
            if name == "documentclass":
                cursor.skip_option()
                document.document_class = cursor.read_group_text()
            elif name == "title":
                document.title = cursor.read_group_text()
            elif name == "author":
                author_text = cursor.read_group_text()
                document.authors = [
                    _squash(a) for a in author_text.split(" and ") if _squash(a)
                ]
            elif name in _SECTION_LEVELS:
                cursor.skip_option()
                open_section(_SECTION_LEVELS[name], cursor.read_group_text())
            elif name == "begin":
                env_name = cursor.read_group_text()
                if env_name == "document":
                    continue  # body starts; preamble commands already handled
                if env_name == "abstract":
                    open_environment("abstract")
                else:
                    cursor.skip_option()
                    open_environment(env_name)
            elif name == "end":
                env_name = cursor.read_group_text()
                if env_name == "document":
                    continue
                close_environment(env_name)
            elif name == "caption":
                caption = cursor.read_group_text()
                if environment_stack:
                    environment_stack[-1].caption = caption
                else:
                    text_buffer.append(caption)
            elif name == "label":
                label = cursor.read_group_text()
                if environment_stack:
                    environment_stack[-1].label = label
                elif section_stack:
                    section_stack[-1].label = label
            elif name in ("ref", "autoref", "eqref", "pageref"):
                flush_text()
                containers[-1].append(Reference(cursor.read_group_text()))
            elif name in _IGNORED_WITH_ARG:
                cursor.skip_option()
                cursor.read_group_text()
            elif name in _IGNORED_BARE:
                continue
            else:
                # Unknown command: its brace arguments flatten into text
                # (e.g. \emph{important} -> "important").
                argument = cursor.read_group_text()
                if argument:
                    text_buffer.append(argument)

    flush_text()

    # Pull the abstract environment up into the document metadata.
    for node in list(document.body):
        if isinstance(node, Environment) and node.name == "abstract":
            document.abstract = node.text()
            document.body.remove(node)
            break
    _resolve_labels(document)
    return document


def _resolve_labels(document: LatexDocument) -> None:
    """Fill ``document.labels`` and point every reference at its target."""
    for section in document.all_sections():
        if section.label:
            document.labels.setdefault(section.label, section)
    for environment in document.all_environments():
        if environment.label:
            document.labels.setdefault(environment.label, environment)
    for reference in document.all_references():
        reference.target = document.labels.get(reference.label)
