"""Structure tree produced by the LaTeX parser.

The tree mirrors the subgraphs shown in Figure 1 of the paper: a
document node holding metadata (class, title), sections nesting by level,
environments (figure, table, ...) carrying captions and labels, and
``\\ref`` nodes whose resolved targets add the *cross* edges that make
LaTeX content graph-structured rather than tree-structured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


class StructureNode:
    """Base class of all structure tree nodes."""

    __slots__ = ()


@dataclass(slots=True)
class Paragraph(StructureNode):
    """A run of body text between structural markers."""

    text: str


@dataclass(slots=True)
class Reference(StructureNode):
    """A ``\\ref{label}``; ``target`` is filled in by label resolution."""

    label: str
    target: "Section | Environment | None" = None


@dataclass(slots=True)
class Environment(StructureNode):
    """A ``\\begin{name} ... \\end{name}`` block.

    ``caption`` and ``label`` come from ``\\caption{...}``/``\\label{...}``
    inside the environment; ``body`` collects nested structure.
    """

    name: str
    caption: str = ""
    label: str = ""
    body: list[StructureNode] = field(default_factory=list)

    def text(self) -> str:
        return _collect_text(self.body)


@dataclass(slots=True)
class Section(StructureNode):
    """A sectioning command: level 1 = ``\\section``, 2 = ``\\subsection``,
    3 = ``\\subsubsection``."""

    level: int
    title: str
    label: str = ""
    body: list[StructureNode] = field(default_factory=list)

    def subsections(self) -> list["Section"]:
        return [n for n in self.body if isinstance(n, Section)]

    def environments(self) -> list[Environment]:
        return [n for n in self.body if isinstance(n, Environment)]

    def references(self) -> list[Reference]:
        out: list[Reference] = []
        for node in self.body:
            if isinstance(node, Reference):
                out.append(node)
            elif isinstance(node, Environment):
                out.extend(r for r in node.body if isinstance(r, Reference))
        return out

    def text(self) -> str:
        """Text of this section excluding nested subsections."""
        return _collect_text(
            n for n in self.body if not isinstance(n, Section)
        )


@dataclass(slots=True)
class LatexDocument(StructureNode):
    """The parsed document: preamble metadata plus the body structure."""

    document_class: str = ""
    title: str = ""
    authors: list[str] = field(default_factory=list)
    abstract: str = ""
    body: list[StructureNode] = field(default_factory=list)
    labels: dict[str, "Section | Environment"] = field(default_factory=dict)

    def sections(self) -> list[Section]:
        """Top-level sections (level 1)."""
        return [n for n in self.body if isinstance(n, Section)]

    def all_sections(self) -> Iterator[Section]:
        """All sections at any nesting depth, document order."""
        stack: list[StructureNode] = list(reversed(self.body))
        while stack:
            node = stack.pop()
            if isinstance(node, Section):
                yield node
                stack.extend(reversed(node.body))
            elif isinstance(node, Environment):
                stack.extend(reversed(node.body))

    def all_environments(self) -> Iterator[Environment]:
        """All environments at any nesting depth, document order."""
        stack: list[StructureNode] = list(reversed(self.body))
        while stack:
            node = stack.pop()
            if isinstance(node, Environment):
                yield node
                stack.extend(reversed(node.body))
            elif isinstance(node, Section):
                stack.extend(reversed(node.body))

    def all_references(self) -> Iterator[Reference]:
        stack: list[StructureNode] = list(reversed(self.body))
        while stack:
            node = stack.pop()
            if isinstance(node, Reference):
                yield node
            elif isinstance(node, (Section, Environment)):
                stack.extend(reversed(node.body))

    def text(self) -> str:
        return _collect_text(self.body)


def _collect_text(nodes) -> str:
    parts: list[str] = []
    stack: list[StructureNode] = list(reversed(list(nodes)))
    while stack:
        node = stack.pop()
        if isinstance(node, Paragraph):
            parts.append(node.text)
        elif isinstance(node, Environment):
            if node.caption:
                parts.append(node.caption)
            stack.extend(reversed(node.body))
        elif isinstance(node, Section):
            parts.append(node.title)
            stack.extend(reversed(node.body))
    return " ".join(p.strip() for p in parts if p.strip())
