"""Rendering traced executions: the EXPLAIN ANALYZE output.

The renderer turns a span forest into the classic annotated plan tree —
one line per operator with estimated vs. actual cardinality and wall
time — followed by the optimizer's rewrite log and the substrate
counters. ``redact_timing`` replaces wall times with ``-`` so golden
tests can compare output byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from .collector import TraceCollector
from .span import Span

if TYPE_CHECKING:  # pragma: no cover
    from ..query.executor import QueryResult


def _format_time(seconds: float | None, *, redact: bool) -> str:
    if redact or seconds is None:
        return "-"
    return f"{seconds * 1000:.2f}ms"


def format_span(span: Span, *, redact_timing: bool = False) -> str:
    """One annotated plan line: ``detail  [est=.. rows=.. time=..]``."""
    fields = [
        f"est={span.estimate if span.estimate is not None else '?'}",
        f"rows={span.actual_rows if span.actual_rows is not None else '?'}",
    ]
    if span.batches is not None:
        fields.append(f"batches={span.batches}")
    fields.append(
        f"time={_format_time(span.elapsed_seconds, redact=redact_timing)}"
    )
    line = f"{span.detail}  [{' '.join(fields)}]"
    if span.status not in ("ok", "running"):
        line += f"  !{span.status}"
    return line


def render_spans(roots: Iterable[Span], *,
                 redact_timing: bool = False) -> str:
    """The annotated plan tree (indentation mirrors plan nesting)."""
    lines: list[str] = []
    for root in roots:
        for span in root.walk():
            lines.append("  " * span.depth
                         + format_span(span, redact_timing=redact_timing))
    return "\n".join(lines)


@dataclass
class ExplainAnalyzeReport:
    """The result of ``QueryProcessor.explain_analyze()``: the executed
    query's result plus its full trace, renderable as a report."""

    result: "QueryResult"
    trace: TraceCollector

    def render(self, *, redact_timing: bool = False) -> str:
        lines = [render_spans(self.trace.roots,
                              redact_timing=redact_timing)]
        if self.trace.rewrites:
            lines.append("rewrites:")
            for event in self.trace.rewrites:
                lines.append(f"  {event.rule}: {event.detail}")
        if self.trace.counters:
            lines.append("counters:")
            for name in sorted(self.trace.counters):
                lines.append(f"  {name}: {self.trace.counters[name]}")
        degradation = getattr(self.result, "degradation", None)
        if degradation is not None and degradation.is_degraded:
            lines.append("degradation:")
            for line in degradation.render().splitlines():
                lines.append(f"  {line}")
        elapsed = _format_time(self.result.elapsed_seconds,
                               redact=redact_timing)
        lines.append(f"-- {len(self.result)} result(s) in {elapsed}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
