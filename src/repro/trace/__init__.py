"""Query tracing and profiling (EXPLAIN ANALYZE).

The 2006 prototype — and, until this layer existed, this reproduction —
reported only end-to-end query times (Table 4 / Figure 6). ``repro.trace``
opens the black box: every plan-node execution records a :class:`Span`
(operator, wall time, estimated vs. actual cardinality), every
:class:`~repro.query.executor.ExecutionContext` substrate call bumps a
counter, and every lazy component materialization (Section 4.1) is
observed through :mod:`repro.core.lazy`'s sink hook. The result is an
annotated plan tree — ``QueryProcessor.explain_analyze()`` / the CLI's
``repro query --analyze`` — plus per-operator aggregates that the
serving layer folds into its metrics registry.

Tracing is strictly opt-in: with no collector attached the query path
pays one ``is None`` check per plan node and nothing else (see
``benchmarks/bench_trace_overhead.py``).
"""

from .collector import TraceCollector
from .render import ExplainAnalyzeReport, render_spans
from .span import RewriteEvent, Span, span_from_wire, span_to_wire

__all__ = [
    "ExplainAnalyzeReport",
    "RewriteEvent",
    "Span",
    "TraceCollector",
    "render_spans",
    "span_from_wire",
    "span_to_wire",
]
