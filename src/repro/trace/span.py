"""The span model: one record per plan-node execution.

A span is written in two steps — it is created with the operator's
*pre-execution* cardinality estimate (on the first batch pulled, for
engine operators) and sealed with the actual row count, batches pulled,
wall time and final status. Spans nest exactly as plan nodes do, so the
span forest mirrors the physical plan tree; with the batched engine,
the wall time is the sum of the operator's ``next_batch()`` calls
(inclusive of its inputs' pull time, exclusive of its siblings').

Spans also cross process boundaries: a shard worker executes its slice
of a routed query under its own collector and ships the resulting tree
back in the reply frame as the compact wire form
(:func:`span_to_wire` / :func:`span_from_wire`), and the supervisor
grafts it under its own dispatch span (:meth:`Span.rebase`), so one
stitched EXPLAIN ANALYZE tree covers both processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class Span:
    """One operator execution inside a traced query."""

    operator: str                     #: plan-node class name
    detail: str                       #: the node's ``describe()`` string
    depth: int                        #: nesting depth (0 = plan root)
    estimate: int | None = None       #: pre-execution cardinality estimate
    actual_rows: int | None = None    #: rows actually produced
    #: batches pulled from this operator (None for non-engine spans,
    #: e.g. the Join driver); rows/batches gives rows-per-batch
    batches: int | None = None
    elapsed_seconds: float | None = None
    status: str = "running"           #: running | ok | cancelled | error
    children: list["Span"] = field(default_factory=list)

    def walk(self) -> Iterator["Span"]:
        """This span and all descendants, depth-first (plan order)."""
        yield self
        for child in self.children:
            yield from child.walk()

    @property
    def misestimate(self) -> float | None:
        """Actual/estimate ratio (``None`` until both sides are known)."""
        if self.estimate is None or self.actual_rows is None:
            return None
        return self.actual_rows / max(1, self.estimate)

    def rebase(self, depth: int) -> "Span":
        """Re-anchor this tree at ``depth`` (grafting under a parent
        from another process re-derives every nesting level)."""
        self.depth = depth
        for child in self.children:
            child.rebase(depth + 1)
        return self


#: wire-form field order: short keys keep reply frames compact without
#: a binary format (the frames are JSON end to end)
_WIRE_KEYS = (("o", "operator"), ("d", "detail"), ("e", "estimate"),
              ("r", "actual_rows"), ("b", "batches"),
              ("t", "elapsed_seconds"))


def span_to_wire(span: Span) -> dict:
    """One span tree as a compact JSON-ready dict (depth is implied by
    nesting and re-derived by the receiver's :meth:`Span.rebase`)."""
    out: dict = {}
    for short, attr in _WIRE_KEYS:
        value = getattr(span, attr)
        if value is not None:
            out[short] = value
    if span.status != "ok":
        out["s"] = span.status
    if span.children:
        out["c"] = [span_to_wire(child) for child in span.children]
    return out


def span_from_wire(data: dict, *, depth: int = 0) -> Span:
    """Rebuild a span tree from its wire form."""
    span = Span(operator=str(data.get("o", "?")),
                detail=str(data.get("d", "")), depth=depth,
                estimate=data.get("e"), actual_rows=data.get("r"),
                batches=data.get("b"), elapsed_seconds=data.get("t"),
                status=str(data.get("s", "ok")))
    span.children = [span_from_wire(child, depth=depth + 1)
                     for child in data.get("c", ())]
    return span


@dataclass(frozen=True)
class RewriteEvent:
    """One optimizer rewrite applied while refining the plan."""

    rule: str    #: e.g. ``eliminate-double-negation``
    detail: str  #: human-readable before/after summary
