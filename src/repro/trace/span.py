"""The span model: one record per plan-node execution.

A span is written in two steps — it is created with the operator's
*pre-execution* cardinality estimate (on the first batch pulled, for
engine operators) and sealed with the actual row count, batches pulled,
wall time and final status. Spans nest exactly as plan nodes do, so the
span forest mirrors the physical plan tree; with the batched engine,
the wall time is the sum of the operator's ``next_batch()`` calls
(inclusive of its inputs' pull time, exclusive of its siblings').
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class Span:
    """One operator execution inside a traced query."""

    operator: str                     #: plan-node class name
    detail: str                       #: the node's ``describe()`` string
    depth: int                        #: nesting depth (0 = plan root)
    estimate: int | None = None       #: pre-execution cardinality estimate
    actual_rows: int | None = None    #: rows actually produced
    #: batches pulled from this operator (None for non-engine spans,
    #: e.g. the Join driver); rows/batches gives rows-per-batch
    batches: int | None = None
    elapsed_seconds: float | None = None
    status: str = "running"           #: running | ok | cancelled | error
    children: list["Span"] = field(default_factory=list)

    def walk(self) -> Iterator["Span"]:
        """This span and all descendants, depth-first (plan order)."""
        yield self
        for child in self.children:
            yield from child.walk()

    @property
    def misestimate(self) -> float | None:
        """Actual/estimate ratio (``None`` until both sides are known)."""
        if self.estimate is None or self.actual_rows is None:
            return None
        return self.actual_rows / max(1, self.estimate)


@dataclass(frozen=True)
class RewriteEvent:
    """One optimizer rewrite applied while refining the plan."""

    rule: str    #: e.g. ``eliminate-double-negation``
    detail: str  #: human-readable before/after summary
