"""The trace collector: spans, substrate counters, rewrite log.

One :class:`TraceCollector` covers one query execution. The executor
hangs it off :class:`~repro.query.executor.ExecutionContext`; plan nodes
open/close spans through it, context substrate calls (index lookups,
group navigation) bump its counters, and — while :meth:`activate` is in
effect — every lazy component materialization observed by
:mod:`repro.core.lazy` is counted too, which is how extensional vs.
intensional (lazy) component fetches become visible per query.

The collector is single-threaded by design (one execution, one worker
thread); the serving layer creates one per request and folds the
aggregates into its thread-safe metrics registry afterwards.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

from ..core.errors import DeadlineExceeded, QueryCancelled
from ..core.lazy import install_materialization_sink, uninstall_materialization_sink
from .span import RewriteEvent, Span


class TraceCollector:
    """Collects spans, counters and rewrite events for one execution."""

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self.counters: dict[str, int] = {}
        self.rewrites: list[RewriteEvent] = []
        self.cancelled = False
        self._stack: list[tuple[Span, float]] = []
        self._paused = 0
        #: the engine operator span whose ``next_batch()`` is currently
        #: on the call stack — the parent of any span begun inside it
        #: (pipelined pulls interleave, so LIFO stack order cannot be
        #: assumed for operator spans)
        self.active_operator: Span | None = None

    # -- spans ---------------------------------------------------------------

    def begin(self, operator: str, detail: str, *,
              estimate: int | None = None) -> Span:
        """Open a span; it nests under the currently-running one."""
        span = Span(operator=operator, detail=detail,
                    depth=len(self._stack), estimate=estimate)
        if self._stack:
            self._stack[-1][0].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append((span, time.perf_counter()))
        return span

    def finish(self, span: Span, *, rows: int | None = None) -> None:
        """Seal a span successfully with its actual output cardinality."""
        self._pop(span, status="ok", rows=rows)

    def abort(self, span: Span, error: BaseException) -> None:
        """Seal a span that raised; cancellation is distinguished from
        genuine errors so aborted traces stay interpretable."""
        if isinstance(error, (QueryCancelled, DeadlineExceeded)):
            self.cancelled = True
            self._pop(span, status="cancelled")
        else:
            self._pop(span, status="error")

    def _pop(self, span: Span, *, status: str,
             rows: int | None = None) -> None:
        while self._stack:
            top, started = self._stack.pop()
            top.elapsed_seconds = time.perf_counter() - started
            top.status = status
            top.actual_rows = rows
            if top is span:
                return
            # an inner span was left open (its operator raised without
            # aborting); seal it with the same status and keep unwinding

    # -- engine operator spans (explicit parent, no stack) ---------------------

    def begin_operator(self, operator: str, detail: str, *,
                       estimate: int | None = None,
                       parent: Span | None = None) -> Span:
        """Open a span for a batched-engine operator.

        Unlike :meth:`begin`, nesting is explicit: ``parent`` is the
        span of the operator whose pull is driving this one (the
        collector's :attr:`active_operator`). Without a parent, the span
        nests under the innermost *stack* span if one is open (a Join
        driving its inputs) and becomes a root otherwise.
        """
        if parent is not None:
            span = Span(operator=operator, detail=detail,
                        depth=parent.depth + 1, estimate=estimate)
            parent.children.append(span)
        elif self._stack:
            top = self._stack[-1][0]
            span = Span(operator=operator, detail=detail,
                        depth=top.depth + 1, estimate=estimate)
            top.children.append(span)
        else:
            span = Span(operator=operator, detail=detail, depth=0,
                        estimate=estimate)
            self.roots.append(span)
        return span

    def finish_operator(self, span: Span, *, rows: int, batches: int,
                        elapsed: float) -> None:
        """Seal an operator span at stream exhaustion or early close."""
        span.actual_rows = rows
        span.batches = batches
        span.elapsed_seconds = elapsed
        span.status = "ok"

    def abort_operator(self, span: Span, error: BaseException, *,
                       rows: int, batches: int, elapsed: float) -> None:
        """Seal an operator span whose pull raised."""
        if isinstance(error, (QueryCancelled, DeadlineExceeded)):
            self.cancelled = True
            span.status = "cancelled"
        else:
            span.status = "error"
        span.actual_rows = rows
        span.batches = batches
        span.elapsed_seconds = elapsed

    # -- cross-process stitching ---------------------------------------------

    def graft(self, span: Span, *, parent: Span | None = None) -> Span:
        """Attach an externally-built span tree — typically deserialized
        from another process's reply frame via
        :func:`~repro.trace.span.span_from_wire` — under ``parent`` (a
        new root when None). Depths are re-derived from the graft
        point, so the adopted tree renders at the right indentation."""
        if parent is not None:
            parent.children.append(span.rebase(parent.depth + 1))
        else:
            self.roots.append(span.rebase(0))
        return span

    # -- counters ------------------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        """Bump a named counter (no-op while :meth:`paused`)."""
        if self._paused:
            return
        self.counters[name] = self.counters.get(name, 0) + amount

    @contextmanager
    def paused(self) -> Iterator[None]:
        """Suspend counting — used while computing estimates, so the
        substrate counters measure execution work only."""
        self._paused += 1
        try:
            yield
        finally:
            self._paused -= 1

    # -- optimizer rewrites ----------------------------------------------------

    def record_rewrite(self, rule: str, detail: str) -> None:
        self.rewrites.append(RewriteEvent(rule=rule, detail=detail))

    # -- lazy-materialization observation ---------------------------------------

    @contextmanager
    def activate(self) -> Iterator["TraceCollector"]:
        """Install this collector as the thread's lazy-materialization
        sink for the duration (see :mod:`repro.core.lazy`)."""
        token = install_materialization_sink(self)
        try:
            yield self
        finally:
            uninstall_materialization_sink(token)

    # -- introspection -----------------------------------------------------------

    def spans(self) -> Iterator[Span]:
        """All spans, depth-first across the roots."""
        for root in self.roots:
            yield from root.walk()

    @property
    def span_count(self) -> int:
        return sum(1 for _ in self.spans())

    def aggregates(self) -> dict[str, dict[str, float]]:
        """Per-operator totals: calls, rows produced, inclusive seconds.

        Seconds are *inclusive* of child operators (a parent's time
        contains its inputs') — the right shape for "where does the wall
        time go" dashboards; self-time is recoverable from the tree.
        """
        out: dict[str, dict[str, float]] = {}
        for span in self.spans():
            agg = out.setdefault(span.operator,
                                 {"calls": 0, "rows": 0, "seconds": 0.0})
            agg["calls"] += 1
            agg["rows"] += span.actual_rows or 0
            agg["seconds"] += span.elapsed_seconds or 0.0
        return out
