"""``repro.service`` — the concurrent dataspace query service.

A serving layer over :class:`~repro.facade.Dataspace`: a worker thread
pool behind a bounded admission queue, plan and result caches (the
result cache invalidated event-driven from the RVM's push bus), query
deadlines with cooperative cancellation, per-client sessions and a
metrics registry with latency percentiles. See ``DESIGN.md`` §
"The query service" for the architecture and the invalidation
protocol.
"""

from ..core.errors import (
    DeadlineExceeded,
    Overloaded,
    QueryCancelled,
    ServiceClosed,
    ServiceError,
)
from .admission import AdmissionController, CancellationToken
from .cache import LRUCache, PlanCache, QueryKey, ResultCache
from .metrics import Counter, Histogram, HistogramSnapshot, MetricsRegistry
from .server import DataspaceService, QueryTicket, Session
from .workload import WorkloadReport, run_closed_loop

__all__ = [
    "AdmissionController", "CancellationToken", "Counter",
    "DataspaceService", "DeadlineExceeded", "Histogram",
    "HistogramSnapshot", "LRUCache", "MetricsRegistry", "Overloaded",
    "PlanCache", "QueryCancelled", "QueryKey", "QueryTicket", "ResultCache",
    "ServiceClosed", "ServiceError", "Session", "WorkloadReport",
    "run_closed_loop",
]
