"""A closed-loop workload driver for the query service.

Each of ``clients`` threads opens a session and issues its requests
back-to-back (closed loop: the next request starts when the previous
response arrives), walking a query mix round-robin from a per-client
offset. The driver reports throughput, latency percentiles and error
counts — the numbers `benchmarks/bench_service.py` and the CLI's
``serve`` command print.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from ..core.errors import Overloaded, ServiceError
from .metrics import HistogramSnapshot, _percentile


@dataclass
class WorkloadReport:
    """What one closed-loop run measured."""

    clients: int
    requests: int = 0
    succeeded: int = 0
    rejected: int = 0
    failed: int = 0
    elapsed_seconds: float = 0.0
    latencies: list[float] = field(default_factory=list, repr=False)

    @property
    def throughput(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.succeeded / self.elapsed_seconds

    def latency_snapshot(self) -> HistogramSnapshot:
        if not self.latencies:
            return HistogramSnapshot.empty()
        ordered = sorted(self.latencies)
        return HistogramSnapshot(
            count=len(ordered), minimum=ordered[0], maximum=ordered[-1],
            mean=sum(ordered) / len(ordered),
            p50=_percentile(ordered, 0.50),
            p95=_percentile(ordered, 0.95),
            p99=_percentile(ordered, 0.99),
        )


def run_closed_loop(service, queries: list[str], *, clients: int = 4,
                    requests_per_client: int = 25,
                    use_cache: bool = True,
                    deadline: float | None = None) -> WorkloadReport:
    """Drive ``service`` with ``clients`` concurrent closed-loop clients."""
    if not queries:
        raise ValueError("the query mix must not be empty")
    report = WorkloadReport(clients=clients)
    lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)

    def client(index: int) -> None:
        session = service.open_session(f"load-client-{index}",
                                       use_cache=use_cache)
        barrier.wait()
        local_latencies = []
        succeeded = rejected = failed = 0
        for step in range(requests_per_client):
            iql = queries[(index + step) % len(queries)]
            t0 = time.perf_counter()
            try:
                session.query(iql, deadline=deadline, timeout=60.0)
            except Overloaded:
                rejected += 1
                continue
            except ServiceError:
                failed += 1
                continue
            local_latencies.append(time.perf_counter() - t0)
            succeeded += 1
        session.close()
        with lock:
            report.succeeded += succeeded
            report.rejected += rejected
            report.failed += failed
            report.requests += requests_per_client
            report.latencies.extend(local_latencies)

    threads = [threading.Thread(target=client, args=(index,), daemon=True)
               for index in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    report.elapsed_seconds = time.perf_counter() - started
    return report
