"""Compatibility shim — the metrics registry moved to ``repro.obs``.

The service's private registry grew into the process-global telemetry
spine (:mod:`repro.obs.metrics`): counters, gauges, labeled histograms,
Prometheus/JSON exposition. Everything importable from here before the
move still is; new code should import from :mod:`repro.obs` directly.
"""

from __future__ import annotations

from ..obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    _percentile,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "_percentile",
]
