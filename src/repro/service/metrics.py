"""A lightweight metrics registry: counters and latency histograms.

No external dependency — the registry keeps raw observations (bounded
by a reservoir size) and computes p50/p95/p99 on snapshot, which is
exact for the request volumes the benchmarks drive and plenty for a
reproduction. All types are thread-safe; workers record from the pool
threads while clients snapshot from theirs.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass


class Counter:
    """A monotonically increasing counter."""

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def increment(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


@dataclass(frozen=True)
class HistogramSnapshot:
    """One histogram's summary statistics at a point in time."""

    count: int
    minimum: float
    maximum: float
    mean: float
    p50: float
    p95: float
    p99: float

    @classmethod
    def empty(cls) -> "HistogramSnapshot":
        return cls(count=0, minimum=0.0, maximum=0.0, mean=0.0,
                   p50=0.0, p95=0.0, p99=0.0)


def _percentile(ordered: list[float], fraction: float) -> float:
    """Nearest-rank percentile over a pre-sorted list."""
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1,
                      round(fraction * (len(ordered) - 1))))
    return ordered[rank]


class Histogram:
    """Latency histogram over a sliding reservoir of observations."""

    def __init__(self, name: str, *, reservoir: int = 4096):
        self.name = name
        self.reservoir = reservoir
        self._observations: list[float] = []
        self._count = 0
        self._total = 0.0
        self._minimum = float("inf")
        self._maximum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._total += value
            self._minimum = min(self._minimum, value)
            self._maximum = max(self._maximum, value)
            self._observations.append(value)
            if len(self._observations) > self.reservoir:
                # drop the oldest half; recent traffic dominates tails
                del self._observations[:self.reservoir // 2]

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def snapshot(self) -> HistogramSnapshot:
        with self._lock:
            if self._count == 0:
                return HistogramSnapshot.empty()
            ordered = sorted(self._observations)
            return HistogramSnapshot(
                count=self._count,
                minimum=self._minimum,
                maximum=self._maximum,
                mean=self._total / self._count,
                p50=_percentile(ordered, 0.50),
                p95=_percentile(ordered, 0.95),
                p99=_percentile(ordered, 0.99),
            )


class MetricsRegistry:
    """Named counters and histograms, created on first use."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter(name)
            return counter

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(name)
            return histogram

    def increment(self, name: str, amount: int = 1) -> None:
        """Shorthand: bump a named counter."""
        self.counter(name).increment(amount)

    def observe(self, name: str, value: float) -> None:
        """Shorthand: record one observation into a named histogram."""
        self.histogram(name).observe(value)

    def snapshot(self) -> dict[str, object]:
        """Every metric's current value, flat: counters as ints,
        histograms as :class:`HistogramSnapshot`."""
        with self._lock:
            counters = list(self._counters.values())
            histograms = list(self._histograms.values())
        report: dict[str, object] = {}
        for counter in counters:
            report[counter.name] = counter.value
        for histogram in histograms:
            report[histogram.name] = histogram.snapshot()
        return report

    def render(self) -> str:
        """A human-readable dump (for the CLI's serve report)."""
        lines = []
        for name, value in sorted(self.snapshot().items()):
            if isinstance(value, HistogramSnapshot):
                lines.append(
                    f"{name}: n={value.count} mean={value.mean * 1000:.2f}ms "
                    f"p50={value.p50 * 1000:.2f}ms "
                    f"p95={value.p95 * 1000:.2f}ms "
                    f"p99={value.p99 * 1000:.2f}ms"
                )
            else:
                lines.append(f"{name}: {value}")
        return "\n".join(lines)
