"""Plan and result caching for the query service.

Two LRU caches sit in front of the query processor:

* the **plan cache** maps ``(iQL text, optimizer mode, expansion)`` to a
  :class:`~repro.query.executor.PreparedQuery`, so each distinct query
  text is parsed (and, under the rule optimizer, planned) once;
* the **result cache** maps the same key to a finished
  :class:`~repro.query.QueryResult` — which, since the batched engine,
  carries the execution's materialized :class:`~repro.query.engine.Batch`
  sequence, so a cache hit can replay the result as a stream without
  re-running the operator tree.

Results must never go stale. The result cache therefore subscribes to
the RVM's push bus — the same :class:`~repro.pushops.PushBus` the
synchronization manager publishes every view ADD/MODIFY/DELETE on — and
invalidates by *epoch*: every change event bumps a generation counter,
and an entry written under an older generation is treated as a miss (and
evicted) on its next lookup. Bumping a counter is O(1) per event, so a
full re-sync storm costs nothing, and the protocol is conservative by
construction: a change to *any* view flushes *all* cached results,
because an ADD may satisfy a query whose previous result did not
mention the added view at all (so per-entry dependency sets would be
unsound).

Writers racing with invalidation are handled by capturing the epoch
*before* execution starts and storing the entry under that epoch: if a
change event lands mid-execution, the entry is born stale and never
served.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable

from ..pushops import PushBus


class LRUCache:
    """A thread-safe least-recently-used cache with per-entry epochs."""

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: OrderedDict[Any, tuple[Any, int]] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key, *, min_epoch: int = 0):
        """The cached value, or ``None``. An entry written under an
        epoch older than ``min_epoch`` counts as a miss and is dropped."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            value, epoch = entry
            if epoch < min_epoch:
                del self._entries[key]
                self.invalidations += 1
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key, value, *, epoch: int = 0) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (value, epoch)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> int:
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.invalidations += dropped
            return dropped

    def keys(self) -> list:
        with self._lock:
            return list(self._entries.keys())


@dataclass(frozen=True)
class QueryKey:
    """Cache key: query text plus everything that shapes its plan."""

    text: str
    optimizer: str
    expansion: str


class PlanCache:
    """LRU of :class:`PreparedQuery` objects, keyed by :class:`QueryKey`.

    Parsed plans survive data changes — a plan names indexes, not index
    *contents* — so no invalidation hook is needed for the rule
    optimizer. (Cost-mode plans are not memoized inside
    ``PreparedQuery`` in the first place; see the executor.)
    """

    def __init__(self, capacity: int = 128):
        self._lru = LRUCache(capacity)

    def get(self, key: QueryKey):
        return self._lru.get(key)

    def put(self, key: QueryKey, prepared) -> None:
        self._lru.put(key, prepared)

    def get_or_prepare(self, key: QueryKey, prepare: Callable[[str], Any]):
        prepared = self._lru.get(key)
        if prepared is None:
            prepared = prepare(key.text)
            self._lru.put(key, prepared)
        return prepared

    @property
    def hits(self) -> int:
        return self._lru.hits

    @property
    def misses(self) -> int:
        return self._lru.misses

    def __len__(self) -> int:
        return len(self._lru)


class ResultCache:
    """LRU of query results with event-driven epoch invalidation."""

    def __init__(self, capacity: int = 512, *, bus: PushBus | None = None):
        self._lru = LRUCache(capacity)
        self._epoch = 0
        self._epoch_lock = threading.Lock()
        self._unsubscribe: Callable[[], None] | None = None
        if bus is not None:
            self.attach(bus)

    # -- invalidation --------------------------------------------------------

    def attach(self, bus: PushBus) -> None:
        """Subscribe to change events; every event invalidates."""
        self.detach()
        self._unsubscribe = bus.subscribe(self._on_change)

    def detach(self) -> None:
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None

    def _on_change(self, event) -> None:
        with self._epoch_lock:
            self._epoch += 1

    @property
    def epoch(self) -> int:
        """The current generation; capture *before* executing a query
        and pass it to :meth:`put` so mid-flight changes win."""
        with self._epoch_lock:
            return self._epoch

    # -- cache protocol ------------------------------------------------------

    def get(self, key: QueryKey):
        return self._lru.get(key, min_epoch=self.epoch)

    def put(self, key: QueryKey, result, *, epoch: int | None = None) -> None:
        self._lru.put(key, result,
                      epoch=self.epoch if epoch is None else epoch)

    def clear(self) -> int:
        return self._lru.clear()

    def __len__(self) -> int:
        return len(self._lru)

    @property
    def hits(self) -> int:
        return self._lru.hits

    @property
    def misses(self) -> int:
        return self._lru.misses

    @property
    def invalidations(self) -> int:
        return self._lru.invalidations
