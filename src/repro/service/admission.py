"""Admission control: bounded queueing, deadlines, cancellation.

The service never lets load grow without bound. A fixed worker pool
caps *concurrency*; this module's :class:`AdmissionController` caps the
*waiting line* in front of it. A request that arrives when the line is
full is rejected immediately with a typed
:class:`~repro.core.errors.Overloaded` error — fail fast beats queueing
forever (the classic admission-control argument).

Deadlines are enforced twice: a request that expires while still queued
is failed without ever executing, and a :class:`CancellationToken` is
threaded into :class:`repro.query.executor.ExecutionContext` so a query
that is already running aborts cooperatively at its next checkpoint.
"""

from __future__ import annotations

import collections
import threading
import time

from ..core.errors import DeadlineExceeded, Overloaded, QueryCancelled


class CancellationToken:
    """Cooperative cancellation with an optional deadline.

    The executor calls :meth:`check` from plan-node inner loops;
    anything holding the token may :meth:`cancel` it from another
    thread. Deadlines are monotonic-clock timestamps.
    """

    def __init__(self, *, deadline: float | None = None):
        self.deadline = deadline
        self._cancelled = False
        self._reason = ""

    @classmethod
    def with_timeout(cls, seconds: float) -> "CancellationToken":
        return cls(deadline=time.monotonic() + seconds)

    def cancel(self, reason: str = "cancelled") -> None:
        self._cancelled = True
        self._reason = reason

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def expired(self) -> bool:
        return self.deadline is not None and time.monotonic() > self.deadline

    def check(self) -> None:
        """Raise if cancelled (:class:`QueryCancelled`) or past the
        deadline (:class:`DeadlineExceeded`)."""
        if self._cancelled:
            raise QueryCancelled(self._reason or "query cancelled")
        if self.expired:
            raise DeadlineExceeded("query deadline exceeded mid-execution")

    def remaining(self) -> float | None:
        if self.deadline is None:
            return None
        return self.deadline - time.monotonic()


class AdmissionController:
    """A bounded FIFO request queue with overload rejection.

    ``max_queue_depth`` counts requests *waiting* (not executing — the
    worker pool bounds that separately). :meth:`submit` either enqueues
    or raises :class:`Overloaded`; workers block in :meth:`take`.
    ``None`` items are never admitted — :meth:`poison` injects them past
    the depth check to wake workers up for shutdown.
    """

    def __init__(self, *, max_queue_depth: int = 32):
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        self.max_queue_depth = max_queue_depth
        self._items: collections.deque = collections.deque()
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self.admitted = 0
        self.rejected = 0

    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._items)

    def submit(self, item) -> None:
        with self._lock:
            waiting = sum(1 for queued in self._items if queued is not None)
            if waiting >= self.max_queue_depth:
                self.rejected += 1
                raise Overloaded(
                    f"request queue full ({waiting}/{self.max_queue_depth})",
                    queued=waiting, limit=self.max_queue_depth,
                )
            self._items.append(item)
            self.admitted += 1
            self._available.notify()

    def poison(self, count: int = 1) -> None:
        """Enqueue ``count`` wake-up markers (bypasses the depth check)."""
        with self._lock:
            for _ in range(count):
                self._items.append(None)
            self._available.notify_all()

    def take(self, timeout: float | None = None):
        """Dequeue the next item; ``None`` on timeout or poison marker."""
        with self._lock:
            if not self._items:
                self._available.wait(timeout)
            if not self._items:
                return None
            return self._items.popleft()

    def drain(self) -> list:
        """Remove and return every queued item (used on hard shutdown)."""
        with self._lock:
            items = [item for item in self._items if item is not None]
            self._items.clear()
            return items
