"""The concurrent dataspace query service.

:class:`DataspaceService` wraps one :class:`~repro.facade.Dataspace` in
a serving layer: a fixed worker thread pool executes iQL queries pulled
from a bounded admission queue, a plan cache skips re-parsing, a result
cache (invalidated by the RVM's change events) skips re-execution, and
a metrics registry counts everything. Sessions carry per-client
defaults and statistics.

Execution against the RVM is read-only and the pool size bounds
concurrency, so the single-threaded index structures are shared without
a global lock; writes (``refresh``/``sync``) are expected from one
control thread, exactly as in the single-user iMeMex prototype — the
service adds *concurrent readers*, not concurrent writers.

Life cycle::

    service = dataspace.serve(workers=4, max_queue_depth=32)
    with service:
        result = service.execute('"database"')          # blocking
        ticket = service.submit('//papers//*.tex')      # async
        result = ticket.result(timeout=5.0)
    # context exit drains the queue and stops the workers
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from .. import obs
from ..core.errors import (
    DeadlineExceeded,
    IdmError,
    QueryCancelled,
    ServiceClosed,
)
from ..query import QueryResult
from .admission import AdmissionController, CancellationToken
from .cache import PlanCache, QueryKey, ResultCache
from .metrics import MetricsRegistry


class QueryTicket:
    """A handle on one submitted query (a minimal future)."""

    def __init__(self, iql: str, *, session: "Session | None" = None,
                 tenant: str | None = None):
        self.iql = iql
        self.session = session
        self.tenant = tenant
        self.token = CancellationToken()
        self.cached = False
        self.queue_wait_seconds = 0.0
        self._done = threading.Event()
        self._result: QueryResult | None = None
        self._error: BaseException | None = None

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def cancel(self, reason: str = "cancelled by client") -> None:
        """Request cooperative cancellation (queued or running). A
        running query notices at the engine's next batch boundary —
        streaming scans checkpoint once per vector pulled — so a
        cancelled scan stops mid-corpus instead of finishing."""
        self.token.cancel(reason)

    def result(self, timeout: float | None = None) -> QueryResult:
        """Block until finished; raises the query's error if it failed."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"query did not finish within {timeout}s: {self.iql!r}"
            )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def exception(self, timeout: float | None = None) -> BaseException | None:
        self._done.wait(timeout)
        return self._error

    # -- resolution (service side) -------------------------------------------

    def _resolve(self, result: QueryResult) -> None:
        self._result = result
        self._done.set()
        if self.session is not None:
            self.session._record(ok=True)

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._done.set()
        if self.session is not None:
            self.session._record(ok=False)


@dataclass
class _Request:
    """One admitted query, queued for a worker."""

    ticket: QueryTicket
    key: QueryKey
    use_cache: bool
    enqueued_at: float
    deadline: float | None


@dataclass
class Session:
    """Per-client state: defaults plus submission statistics."""

    session_id: str
    service: "DataspaceService"
    default_deadline: float | None = None
    use_cache: bool = True
    #: admission-time tenant label: stamped on every query this session
    #: submits, flowing into ``service.*``/``query.*`` telemetry as a
    #: ``{tenant="..."}`` series (observational only)
    tenant: str | None = None
    submitted: int = 0
    served: int = 0
    failed: int = 0
    closed: bool = False
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False)

    def submit(self, iql: str, *, deadline: float | None = None,
               use_cache: bool | None = None) -> QueryTicket:
        if self.closed:
            raise ServiceClosed(f"session {self.session_id!r} is closed")
        with self._lock:
            self.submitted += 1
        return self.service.submit(
            iql, session=self,
            deadline=deadline if deadline is not None
            else self.default_deadline,
            use_cache=self.use_cache if use_cache is None else use_cache,
            tenant=self.tenant,
        )

    def query(self, iql: str, *, deadline: float | None = None,
              timeout: float | None = None) -> QueryResult:
        return self.submit(iql, deadline=deadline).result(timeout)

    def _record(self, *, ok: bool) -> None:
        with self._lock:
            if ok:
                self.served += 1
            else:
                self.failed += 1

    def close(self) -> None:
        self.closed = True
        self.service._sessions.pop(self.session_id, None)


class DataspaceService:
    """A multi-session, concurrent query service over one dataspace."""

    def __init__(self, dataspace, *, workers: int = 4,
                 max_queue_depth: int = 32,
                 plan_cache_size: int = 128,
                 result_cache_size: int = 512,
                 cache_results: bool = True,
                 default_deadline: float | None = None,
                 trace_queries: bool = False,
                 autostart: bool = True):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.dataspace = dataspace
        self.processor = dataspace.processor
        self.workers = workers
        self.cache_results = cache_results
        #: per-query tracing: each executed query runs under a
        #: TraceCollector whose per-operator aggregates and substrate
        #: counters are folded into the metrics registry (``trace.*``)
        self.trace_queries = trace_queries
        self.default_deadline = default_deadline
        self.admission = AdmissionController(max_queue_depth=max_queue_depth)
        self.plan_cache = PlanCache(plan_cache_size)
        self.result_cache = ResultCache(result_cache_size,
                                        bus=dataspace.rvm.bus)
        self.metrics = MetricsRegistry()
        self._sessions: dict[str, Session] = {}
        self._session_seq = 0
        self._threads: list[threading.Thread] = []
        #: admitted but not yet resolved (queued or executing) — the
        #: drain condition; covers the gap between dequeue and execute.
        self._outstanding = 0
        self._state_lock = threading.Lock()
        self._closed = False
        self._stopping = False
        #: set by close(drain=False): workers fail anything they dequeue
        #: instead of executing it (abort now, not after the backlog)
        self._fail_fast = False
        # Index before any worker touches the RVM, so the pool only ever
        # reads shared structures.
        if not dataspace._synced:
            dataspace.sync()
        if autostart:
            self.start()

    # -- metric plumbing -----------------------------------------------------

    def _count(self, name: str, amount: int = 1,
               tenant: str | None = None) -> None:
        """Bump a service counter, mirrored process-globally.

        The per-service registry keeps the legacy flat name (pinned by
        existing dashboards and tests); the global registry gets the
        same series under the dotted ``service.*`` namespace so one
        ``repro stats`` scrape sees every service in the process. With
        a ``tenant``, a ``{tenant="..."}`` -labeled global series
        records alongside (never instead of) the unlabeled one.
        """
        self.metrics.counter(name).increment(amount)
        obs.increment(f"service.{name}", amount)
        if tenant:
            obs.increment(f"service.{name}", amount,
                          labels={"tenant": tenant})

    def _observe(self, name: str, value: float,
                 tenant: str | None = None) -> None:
        self.metrics.histogram(name).observe(value)
        obs.observe(f"service.{name}", value)
        if tenant:
            obs.observe(f"service.{name}", value,
                        labels={"tenant": tenant})

    # -- lifecycle -----------------------------------------------------------

    @property
    def started(self) -> bool:
        return bool(self._threads)

    def start(self) -> "DataspaceService":
        if self._closed:
            raise ServiceClosed("cannot restart a closed service")
        if self._threads:
            return self
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"dataspace-worker-{index}", daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        obs.emit_event(obs.INFO, "service", "service.started",
                       f"service started with {self.workers} worker(s)",
                       workers=self.workers)
        return self

    def close(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the service. With ``drain`` (the default) queued queries
        finish first; without it they fail with :class:`ServiceClosed`."""
        if self._closed:
            return
        self._closed = True  # no new submissions
        if not drain:
            # abort now: anything a worker dequeues from here on fails
            # with ServiceClosed instead of executing — without this, a
            # queued slow query the workers race out of the admission
            # queue would keep its caller blocked until it finished
            self._fail_fast = True
        if drain and self._threads:
            deadline = time.monotonic() + timeout
            while self._outstanding > 0 and time.monotonic() < deadline:
                time.sleep(0.002)
        # _stopping must be set before the final queue drain: a submit
        # that raced past the _closed check self-drains when it sees
        # _stopping, so a ticket enqueued after this drain cannot strand
        self._stopping = True
        for request in self.admission.drain():
            request.ticket._fail(ServiceClosed("service shut down"))
            with self._state_lock:
                self._outstanding -= 1
        self.admission.poison(len(self._threads) or 1)
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads.clear()
        self.result_cache.detach()
        obs.emit_event(
            obs.INFO, "service", "service.closed", "service shut down",
            served=self.metrics.counter("queries.served").value,
        )

    def __enter__(self) -> "DataspaceService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    # -- sessions ------------------------------------------------------------

    def open_session(self, session_id: str | None = None, *,
                     deadline: float | None = None,
                     use_cache: bool = True,
                     tenant: str | None = None) -> Session:
        if self._closed:
            raise ServiceClosed("service is closed")
        with self._state_lock:
            if session_id is None:
                self._session_seq += 1
                session_id = f"session-{self._session_seq}"
            if session_id in self._sessions:
                raise ValueError(f"session {session_id!r} already open")
            session = Session(session_id=session_id, service=self,
                              default_deadline=deadline, use_cache=use_cache,
                              tenant=tenant)
            self._sessions[session_id] = session
        self._count("sessions.opened")
        return session

    @property
    def session_count(self) -> int:
        return len(self._sessions)

    # -- submission ----------------------------------------------------------

    def submit(self, iql: str, *, session: Session | None = None,
               deadline: float | None = None,
               use_cache: bool = True,
               tenant: str | None = None) -> QueryTicket:
        """Admit one query; returns immediately with a ticket.

        ``tenant`` labels the query's telemetry (defaults to the
        session's tenant). Raises
        :class:`~repro.core.errors.Overloaded` when the queue is full
        and :class:`ServiceClosed` after shutdown began.
        """
        if self._closed:
            raise ServiceClosed("service is closed")
        if tenant is None and session is not None:
            tenant = session.tenant
        self._count("queries.submitted", tenant=tenant)
        ticket = QueryTicket(iql, session=session, tenant=tenant)
        key = QueryKey(text=iql, optimizer=self.processor.optimizer_mode,
                       expansion=self.processor.expansion)
        use_cache = use_cache and self.cache_results
        if use_cache:
            cached = self.result_cache.get(key)
            if cached is not None:
                self._count("cache.result.hits")
                self._count("queries.served", tenant=tenant)
                self._observe("latency.total_seconds", 0.0, tenant=tenant)
                ticket.cached = True
                ticket._resolve(cached)
                return ticket
            self._count("cache.result.misses")
        if deadline is None:
            deadline = self.default_deadline
        absolute = (time.monotonic() + deadline
                    if deadline is not None else None)
        ticket.token.deadline = absolute
        request = _Request(ticket=ticket, key=key, use_cache=use_cache,
                           enqueued_at=time.monotonic(), deadline=absolute)
        with self._state_lock:
            self._outstanding += 1
        try:
            self.admission.submit(request)
        except Exception:
            with self._state_lock:
                self._outstanding -= 1
            self._count("admission.rejected")
            raise
        if self._stopping:
            # lost the race against close(): the workers are gone, so
            # fail anything still queued rather than strand its ticket
            for stranded in self.admission.drain():
                stranded.ticket._fail(ServiceClosed("service shut down"))
                with self._state_lock:
                    self._outstanding -= 1
        return ticket

    def execute(self, iql: str, *, deadline: float | None = None,
                use_cache: bool = True,
                timeout: float | None = None) -> QueryResult:
        """Submit and wait: the blocking convenience call."""
        return self.submit(iql, deadline=deadline,
                           use_cache=use_cache).result(timeout)

    # -- worker side ---------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            request = self.admission.take(timeout=0.1)
            if request is None:
                if self._stopping:
                    return
                continue
            try:
                self._process(request)
            finally:
                with self._state_lock:
                    self._outstanding -= 1

    def _process(self, request: _Request) -> None:
        ticket = request.ticket
        if self._fail_fast:
            # close(drain=False) aborted the service: fail the ticket
            # instead of executing a request the caller no longer wants
            self._count("queries.failed")
            ticket._fail(ServiceClosed("service shut down before "
                                       "execution"))
            return
        waited = time.monotonic() - request.enqueued_at
        ticket.queue_wait_seconds = waited
        self._observe("latency.queue_seconds", waited)
        try:
            ticket.token.check()  # cancelled or expired while queued
        except (DeadlineExceeded, QueryCancelled) as error:
            self._count_failure(error, tenant=ticket.tenant)
            ticket._fail(error)
            return
        prepared = self.plan_cache.get(request.key)
        if prepared is None:
            self._count("cache.plan.misses")
            try:
                prepared = self.processor.prepare(request.key.text)
            except IdmError as error:
                self._count("queries.failed")
                ticket._fail(error)
                return
            self.plan_cache.put(request.key, prepared)
        else:
            self._count("cache.plan.hits")
        epoch = self.result_cache.epoch
        trace = None
        if self.trace_queries:
            from ..trace import TraceCollector
            trace = TraceCollector()
        started = time.monotonic()
        try:
            result = self.processor.execute_prepared(
                prepared, cancel_token=ticket.token, trace=trace,
                tenant=ticket.tenant,
            )
        except BaseException as error:  # noqa: BLE001 — fail the ticket
            if trace is not None:
                self._fold_trace(trace)  # partial traces still count
            self._count_failure(error, tenant=ticket.tenant)
            ticket._fail(error)
            return
        elapsed = time.monotonic() - started
        if trace is not None:
            self._fold_trace(trace)
        self._observe("latency.execute_seconds", elapsed,
                      tenant=ticket.tenant)
        self._observe("latency.total_seconds", waited + elapsed,
                      tenant=ticket.tenant)
        self._count("queries.served", tenant=ticket.tenant)
        if result.is_degraded:
            # a partial answer is marked, and never cached: once the
            # sources recover, the next execution must not replay the
            # degraded result as if it were complete
            self._count("queries.degraded")
        elif request.use_cache:
            self.result_cache.put(request.key, result, epoch=epoch)
        ticket._resolve(result)

    def _fold_trace(self, trace) -> None:
        """Aggregate one query's trace into the shared registry: per
        plan-operator call/row counts and inclusive latency histograms
        (``trace.op.*``) plus the substrate/laziness counters
        (``trace.ctx.*``, ``trace.component.*``) — the serve-side view
        of EXPLAIN ANALYZE, exposed through :meth:`stats` alongside the
        end-to-end p50/p95/p99."""
        for operator, agg in trace.aggregates().items():
            self.metrics.increment(f"trace.op.{operator}.calls",
                                   int(agg["calls"]))
            self.metrics.increment(f"trace.op.{operator}.rows",
                                   int(agg["rows"]))
            self.metrics.observe(f"trace.op.{operator}.seconds",
                                 agg["seconds"])
        for name, value in trace.counters.items():
            self.metrics.increment(f"trace.{name}", value)

    def _count_failure(self, error: BaseException,
                       tenant: str | None = None) -> None:
        if isinstance(error, DeadlineExceeded):
            self._count("queries.deadline_missed")
        elif isinstance(error, QueryCancelled):
            self._count("queries.cancelled")
        self._count("queries.failed", tenant=tenant)

    # -- introspection -------------------------------------------------------

    def stats(self, *, include_global: bool = True) -> dict[str, object]:
        """Counters, cache sizes and latency snapshots in one dict.

        Legacy flat keys (``queries.served``, ``trace.op.*``,
        ``resilience.<authority>.<key>``) are kept for one release;
        each also appears under the dotted convention (``query.op.*``,
        ``resilience.source.<authority>.<key>`` — the alias table lives
        in DESIGN.md §4f). With ``include_global`` the process-global
        telemetry snapshot is folded in, never overriding a
        service-local key.
        """
        report = self.metrics.snapshot()
        # dotted-convention aliases for the serve-side trace fold
        for name in [n for n in report if n.startswith("trace.")]:
            report.setdefault("query." + name[len("trace."):], report[name])
        report["cache.result.size"] = len(self.result_cache)
        report["cache.plan.size"] = len(self.plan_cache)
        report["queue.depth"] = self.admission.depth
        report["sessions.open"] = self.session_count
        health = self.dataspace.rvm.health_snapshot()
        if health:
            down = [a for a, row in health.items()
                    if row["state"] == "open"]
            report["resilience.sources_down"] = ",".join(down) or "-"
            for authority, row in health.items():
                for key in ("state", "retries", "failures",
                            "short_circuits", "times_opened"):
                    report[f"resilience.{authority}.{key}"] = row[key]
                    report[f"resilience.source.{authority}.{key}"] = row[key]
        if include_global:
            for name, value in obs.global_metrics().snapshot().items():
                report.setdefault(name, value)
        return report
