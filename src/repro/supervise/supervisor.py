"""The shard supervisor: crash-contained workers, supervised failover.

:class:`ShardSupervisor` turns the one-process serving story into a
tree of processes: each shard is a subprocess
(:mod:`repro.supervise.worker`) owning a durability-backed
:class:`~repro.facade.Dataspace` under its own directory, and the
parent routes requests to shards by consistent hashing
(:class:`~repro.supervise.router.HashRing`), watches for worker death,
and restarts dead workers through ``Dataspace.open`` recovery.

The failure contract, in order of the failover timeline:

* **containment** — a SIGKILL, poison query, or OOM in one worker
  cannot touch the other shards: they are separate processes, and the
  supervisor keeps routing to them throughout;
* **detection** — death is noticed the moment the worker's stdout hits
  EOF (a dead process closes its pipes), backstopped by a heartbeat
  ping and ``Popen.wait`` reaping;
* **fencing** — every spawn bumps the shard's *epoch*; the worker
  stamps each reply with the epoch it was started under, and the
  supervisor discards any frame from a stale epoch, so a reply
  buffered by a dead incarnation can never race its re-dispatched
  duplicate (no double replies, ever);
* **exactly-once re-dispatch** — queries that were in flight on the
  dead incarnation (written, unanswered) are parked and re-sent *once*
  after recovery; queries are read-only and idempotent, so the second
  execution is safe, and a second crash fails them with
  :class:`~repro.core.errors.ShardUnavailable` instead of looping;
* **fail-fast during recovery** — new requests for a recovering shard
  get an immediate typed :class:`ShardUnavailable` (with
  ``retry_after`` when the breaker knows it) instead of queueing behind
  an absent worker;
* **bounded restart** — restarts back off exponentially (seeded
  jitter), and a per-shard :class:`~repro.resilience.CircuitBreaker`
  (the same class guarding flaky sources) opens after repeated crash
  loops, degrading the shard to fail-fast until the cool-down admits a
  half-open restart probe.

Locking discipline: each shard has a *state* lock (pending table,
epoch, lifecycle) and a *write* lock (frame writes to the worker's
stdin). A blocking pipe write is never performed under the state lock —
otherwise a full pipe could wedge the reader thread (which needs the
state lock to resolve replies) into a three-way deadlock with a busy
worker.

Telemetry lands in ``repro.obs`` under ``supervise.*``:
``supervise.shard.restarts``, per-shard ``epoch``/``inflight`` gauges,
breaker-state gauges, fenced-reply and re-dispatch counters, and the
``supervise.failover_seconds`` histogram (death detected → ready
again).

The supervisor is also the fleet's observability root (DESIGN.md §4k):

* **metrics federation** — workers piggyback delta exports of their
  own registries on reply frames (:mod:`repro.obs.federation`); the
  supervisor merges each into the process-global registry under
  ``{shard=N}`` labels, so one ``repro stats`` scrape covers every
  worker. ``supervise.obs.*`` meta-metrics count the merges, and the
  ``supervise.obs.stale{shard=N}`` gauge flips to 1 between a worker's
  death and its successor's first export.
* **event forwarding** — worker events at warning or above ride the
  same frames and re-emit into the supervisor's event log tagged with
  their shard, so a failover reads as one timeline (``shard.died`` →
  ``shard.respawn`` → ``shard.recovered``) in ``Dataspace.events()``.
* **trace stitching** — a query dispatched with ``trace`` runs under a
  worker-side collector; the reply carries the span tree in wire form,
  and the supervisor grafts it under its own dispatch spans (ring
  lookup, per-incarnation dispatch, worker-queue wait), so EXPLAIN
  ANALYZE renders one tree across both processes — including both
  incarnations of a re-dispatched query, with fenced stale replies
  reduced to a marker (their spans are never adopted).
"""

from __future__ import annotations

import enum
import os
import random
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from .. import obs
from ..core import errors as _errors
from ..core.errors import (
    ServiceClosed,
    ServiceError,
    ShardUnavailable,
    WireError,
)
from ..resilience.policy import BreakerState, CircuitBreaker, RetryPolicy
from .router import HashRing
from .wire import read_frame, write_frame

#: numeric breaker-state encoding for the ``supervise.breaker.*`` gauges
#: (same codes as the ``resilience.breaker_state`` gauge)
_BREAKER_CODES = {
    BreakerState.CLOSED: 0,
    BreakerState.OPEN: 1,
    BreakerState.HALF_OPEN: 2,
}


class ShardState(enum.Enum):
    STARTING = "starting"      # spawned, waiting for the ready frame
    UP = "up"                  # serving
    RECOVERING = "recovering"  # dead, restart scheduled (backoff)
    BROKEN = "broken"          # crash-looping, breaker open: fail fast
    STOPPING = "stopping"      # close() in progress
    STOPPED = "stopped"


@dataclass(frozen=True)
class SupervisorConfig:
    """Tunables for the supervision loop."""

    #: dataset generator seed; shard ``i`` uses ``seed + i``
    seed: int = 42
    #: dataset scale for first spawns (None: the tiny profile)
    scale: float | None = None
    #: virtual nodes per shard on the hash ring
    ring_replicas: int = 64
    #: monitor tick (restart scheduling, heartbeats)
    tick_seconds: float = 0.02
    #: ping a quiet UP shard this often
    heartbeat_interval: float = 0.5
    #: a shard silent this long (no frame, ping unanswered) is killed
    heartbeat_timeout: float = 30.0
    #: restart backoff: delay before restart n is
    #: ``base * multiplier**(n-1)`` capped at max, plus seeded jitter
    restart_backoff: RetryPolicy = field(default_factory=lambda: RetryPolicy(
        max_attempts=1, backoff_base=0.05, backoff_multiplier=2.0,
        backoff_max=2.0, jitter=0.5,
    ))
    #: consecutive crashes (without an intervening ready) that open the
    #: shard's restart breaker
    breaker_failure_threshold: int = 5
    #: breaker cool-down before a half-open restart probe
    breaker_cooldown_seconds: float = 5.0
    #: how long start()/restarts may wait for a worker's ready frame
    ready_timeout: float = 180.0
    #: jitter seed (chaos runs stay reproducible)
    jitter_seed: int = 0
    #: extra argv appended to every worker spawn (chaos hooks)
    worker_extra_args: tuple = ()
    #: merge worker metric/event exports into the global registry
    federate_metrics: bool = True
    #: min seconds between a worker's piggybacked metric exports
    metrics_interval: float = 1.0
    #: rotate a shard's ``worker.log`` at spawn once it exceeds this
    #: many bytes (<= 0 disables rotation)
    log_max_bytes: int = 1 << 20
    #: rotated generations kept (``worker.log.1`` .. ``.N``)
    log_keep: int = 3


class PendingCall:
    """One request written to a shard: a minimal future with fencing
    metadata (the epoch it was dispatched under, whether it has already
    been re-dispatched once)."""

    def __init__(self, call_id: int, op: str, payload: dict, shard: int):
        self.id = call_id
        self.op = op
        self.payload = payload
        self.shard = shard
        self.epoch = -1           # set at each (re-)dispatch
        self.redispatched = False
        #: per-incarnation dispatch records (kept only for traced
        #: calls): ``{"epoch", "started", "ended", "status", "spans",
        #: "counters", "queue_wait"}`` — one entry per dispatch, so a
        #: re-dispatched query carries both incarnations' stories
        self.dispatches: list[dict] = []
        #: stale (epoch-fenced) replies whose id matched this call —
        #: rendered as a fence marker; their spans are never adopted
        self.fenced = 0
        self._done = threading.Event()
        self._reply: dict | None = None
        self._error: BaseException | None = None
        self._resolved = False    # guards against any double resolution

    @property
    def traced(self) -> bool:
        return bool(self.payload.get("trace"))

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> dict:
        """Block for the reply frame's fields; raises typed errors."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"shard {self.shard} did not answer {self.op} call "
                f"{self.id} within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._reply is not None
        return self._reply

    # -- supervisor side -----------------------------------------------------

    def _resolve(self, frame: dict) -> bool:
        """Resolve from a reply frame; False if already resolved (the
        exactly-once guard — callers count these as protocol bugs)."""
        if self._resolved:
            return False
        self._resolved = True
        if self.dispatches:
            record = self.dispatches[-1]
            record["ended"] = time.perf_counter()
            record["status"] = "ok" if frame.get("ok", False) else "error"
            record["spans"] = frame.get("spans")
            record["counters"] = frame.get("counters")
            record["queue_wait"] = frame.get("queue_wait")
        if frame.get("ok", False):
            self._reply = frame
        else:
            self._error = _typed_error(frame)
        self._done.set()
        return True

    def _fail(self, error: BaseException) -> None:
        if self._resolved:
            return
        self._resolved = True
        self._error = error
        self._done.set()


def _typed_error(frame: dict) -> BaseException:
    """Rehydrate a worker-side error by its exception name."""
    name = frame.get("error", "ServiceError")
    message = frame.get("message", "worker call failed")
    candidate = getattr(_errors, name, None)
    if (isinstance(candidate, type)
            and issubclass(candidate, _errors.IdmError)):
        try:
            return candidate(message)
        except TypeError:  # exotic constructor signature
            pass
    return ServiceError(f"{name}: {message}")


@dataclass
class FleetExplainReport:
    """A stitched cross-process EXPLAIN ANALYZE: the routed query's
    :class:`ShardResult` plus the supervisor-side collector holding the
    grafted tree (``ShardedQuery`` → ``RingLookup`` / per-incarnation
    ``Dispatch`` → ``WorkerQueue`` + the worker's own operator spans)."""

    result: "ShardResult"
    trace: object  # TraceCollector (kept untyped: no import cycle)

    def render(self, *, redact_timing: bool = False) -> str:
        from ..trace import render_spans
        lines = [render_spans(self.trace.roots,
                              redact_timing=redact_timing)]
        if self.trace.counters:
            lines.append("counters:")
            for name in sorted(self.trace.counters):
                lines.append(f"  {name}: {self.trace.counters[name]}")
        elapsed = ("-" if redact_timing
                   else f"{self.result.elapsed_seconds * 1000:.2f}ms")
        lines.append(
            f"-- {self.result.count} result(s) from shard "
            f"{self.result.shard} (epoch {self.result.epoch}) "
            f"in {elapsed}"
        )
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


@dataclass
class ShardResult:
    """One routed query's answer."""

    shard: int
    epoch: int
    uris: list
    count: int
    elapsed_seconds: float
    degraded: bool = False
    redispatched: bool = False

    def __len__(self) -> int:
        return self.count


class _Shard:
    """Supervisor-side state for one shard.

    ``lock`` guards lifecycle state and the pending table; ``write_lock``
    serializes frame writes to the worker's stdin. Never write a frame
    while holding ``lock`` (see the module docstring).
    """

    def __init__(self, index: int, directory: Path,
                 breaker: CircuitBreaker):
        self.index = index
        self.directory = directory
        self.lock = threading.RLock()
        self.write_lock = threading.Lock()
        self.state = ShardState.STOPPED
        self.epoch = 0
        self.proc: subprocess.Popen | None = None
        self.pending: dict[int, PendingCall] = {}
        self.parked: list[PendingCall] = []
        self.breaker = breaker
        self.restarts = 0          # respawns after a death (not the first)
        self.views = 0
        self.recovered_last = False
        self.died_at: float | None = None
        self.backoff_until = 0.0
        self.last_frame_at = 0.0
        self.ping_outstanding = False
        self.ready_event = threading.Event()


class ShardSupervisor:
    """Routes requests over crash-contained shard worker processes."""

    def __init__(self, directory, *, shards: int = 2,
                 config: SupervisorConfig | None = None, **overrides):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if config is None:
            config = SupervisorConfig(**overrides)
        elif overrides:
            from dataclasses import replace
            config = replace(config, **overrides)
        self.config = config
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.ring = HashRing(shards, replicas=config.ring_replicas)
        self._rng = random.Random(config.jitter_seed)
        self._shards = [
            _Shard(
                index, self.directory / f"shard-{index:02d}",
                CircuitBreaker(
                    failure_threshold=config.breaker_failure_threshold,
                    cooldown_seconds=config.breaker_cooldown_seconds,
                ),
            )
            for index in range(shards)
        ]
        self._call_seq = 0
        self._seq_lock = threading.Lock()
        self._closed = False
        self._monitor: threading.Thread | None = None
        self._stop = threading.Event()

    # -- metric plumbing -----------------------------------------------------

    @staticmethod
    def _count(name: str, amount: int = 1) -> None:
        obs.increment(f"supervise.{name}", amount)

    def _publish_shard_gauges(self, shard: _Shard) -> None:
        prefix = f"supervise.shard.{shard.index}"
        obs.set_gauge(f"{prefix}.epoch", shard.epoch)
        obs.set_gauge(f"{prefix}.inflight", len(shard.pending))
        obs.set_gauge(f"supervise.breaker.{shard.index}.state",
                      _BREAKER_CODES[shard.breaker.state])

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ShardSupervisor":
        """Spawn every shard worker and wait until all are serving."""
        if self._closed:
            raise ServiceClosed("cannot restart a closed supervisor")
        for shard in self._shards:
            with shard.lock:
                if shard.state is ShardState.STOPPED:
                    self._spawn(shard)
        deadline = time.monotonic() + self.config.ready_timeout
        for shard in self._shards:
            remaining = deadline - time.monotonic()
            if not shard.ready_event.wait(max(0.0, remaining)):
                self.close(drain=False)
                raise ServiceError(
                    f"shard {shard.index} did not become ready within "
                    f"{self.config.ready_timeout}s"
                )
        self._monitor = threading.Thread(target=self._monitor_loop,
                                         name="shard-monitor", daemon=True)
        self._monitor.start()
        obs.emit_event(obs.INFO, "supervise", "supervise.started",
                       f"supervisor serving {len(self._shards)} shard(s)",
                       shards=len(self._shards))
        return self

    def __enter__(self) -> "ShardSupervisor":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    def close(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop serving and reap every worker.

        With ``drain`` (the default) each shard's in-flight requests
        finish first; without it they fail with :class:`ServiceClosed`.
        """
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
        deadline = time.monotonic() + timeout
        for shard in self._shards:
            self._close_shard(shard, drain=drain, deadline=deadline)
        obs.emit_event(obs.INFO, "supervise", "supervise.closed",
                       "supervisor shut down")

    def _close_shard(self, shard: _Shard, *, drain: bool,
                     deadline: float) -> None:
        if drain:
            while time.monotonic() < deadline:
                with shard.lock:
                    busy = (shard.state is ShardState.UP
                            and (shard.pending or shard.parked))
                if not busy:
                    break
                time.sleep(0.005)
        with shard.lock:
            was_up = shard.state is ShardState.UP
            shard.state = ShardState.STOPPING
            stranded = list(shard.pending.values()) + shard.parked
            shard.pending.clear()
            shard.parked.clear()
            proc = shard.proc
        for call in stranded:
            call._fail(ServiceClosed("supervisor shut down"))
        if proc is not None and proc.poll() is None:
            if was_up:
                try:
                    with shard.write_lock:
                        write_frame(proc.stdin,
                                    {"op": "shutdown", "id": -1})
                except (OSError, ValueError):
                    pass
            try:
                proc.wait(timeout=max(0.1, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        with shard.lock:
            shard.state = ShardState.STOPPED

    # -- spawning and the reader thread --------------------------------------

    def _spawn(self, shard: _Shard) -> None:
        """(Re)start one worker. Caller holds ``shard.lock``."""
        shard.epoch += 1
        shard.state = ShardState.STARTING
        shard.ready_event.clear()
        shard.ping_outstanding = False
        import repro
        src_root = Path(repro.__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = (str(src_root) + os.pathsep
                             + env.get("PYTHONPATH", ""))
        argv = [
            sys.executable, "-m", "repro.supervise.worker",
            str(shard.directory),
            "--shard", str(shard.index),
            "--epoch", str(shard.epoch),
            "--seed", str(self.config.seed + shard.index),
        ]
        if self.config.scale is not None:
            argv += ["--scale", str(self.config.scale)]
        argv += ["--metrics-interval",
                 str(self.config.metrics_interval
                     if self.config.federate_metrics else 0)]
        argv += list(self.config.worker_extra_args)
        shard.directory.mkdir(parents=True, exist_ok=True)
        # worker stderr goes to a per-shard log for post-mortems; the
        # protocol pipes stay clean. Rotation happens here, at spawn,
        # because Popen holds the fd for the incarnation's whole life.
        self._rotate_log(shard.directory / "worker.log")
        with open(shard.directory / "worker.log", "ab") as log:
            shard.proc = subprocess.Popen(
                argv, stdin=subprocess.PIPE, stdout=subprocess.PIPE,
                stderr=log, env=env,
            )
        shard.last_frame_at = time.monotonic()
        reader = threading.Thread(
            target=self._reader_loop,
            args=(shard, shard.epoch, shard.proc),
            name=f"shard-{shard.index}-reader-e{shard.epoch}", daemon=True,
        )
        reader.start()

    def _rotate_log(self, path: Path) -> None:
        """Size-capped ``worker.log`` rotation: shift ``.1`` .. ``.N``
        and truncate, keeping ``log_keep`` generations."""
        keep = self.config.log_keep
        limit = self.config.log_max_bytes
        if keep < 1 or limit <= 0:
            return
        try:
            if path.stat().st_size < limit:
                return
        except OSError:
            return  # first spawn: nothing to rotate
        for generation in range(keep, 1, -1):
            older = path.with_name(f"{path.name}.{generation - 1}")
            if older.exists():
                os.replace(older, path.with_name(f"{path.name}.{generation}"))
        os.replace(path, path.with_name(f"{path.name}.1"))
        self._count("log.rotations")

    def _reader_loop(self, shard: _Shard, epoch: int,
                     proc: subprocess.Popen) -> None:
        """Drain one incarnation's stdout until EOF, then report death."""
        while True:
            try:
                frame = read_frame(proc.stdout)
            except WireError:
                break
            if frame is None:
                break
            self._handle_frame(shard, frame)
        proc.kill()  # no-op when already dead; covers torn-frame exits
        proc.wait()  # reap: no zombies, and poll() turns truthful
        self._on_worker_death(shard, epoch)

    def _handle_frame(self, shard: _Shard, frame: dict) -> None:
        call: PendingCall | None = None
        to_redispatch: list[PendingCall] = []
        with shard.lock:
            if frame.get("epoch") != shard.epoch:
                # the fence: a stale incarnation's buffered reply must
                # not resolve (or double-resolve) anything — and its
                # piggybacked metrics/spans are dropped with it. A
                # traced call re-dispatched under the same id records
                # the hit so the stitched trace shows the fence.
                self._count("replies.fenced")
                stale = shard.pending.get(frame.get("id"))
                if stale is not None:
                    stale.fenced += 1
                return
            shard.last_frame_at = time.monotonic()
            # detach the piggybacked observability payloads under the
            # lock; the (slower) merge happens outside it
            metrics = frame.pop("metrics", None)
            events = frame.pop("events", None)
            op = frame.get("op")
            if op == "ready":
                to_redispatch = self._on_ready(shard, frame)
            else:
                call = shard.pending.pop(frame.get("id"), None)
                if call is not None and call.op == "ping":
                    shard.ping_outstanding = False
                self._publish_shard_gauges(shard)
        if metrics is not None or events is not None:
            self._merge_observability(shard, metrics, events)
        # frame writes happen outside the state lock (see class docstring)
        for parked in to_redispatch:
            parked.redispatched = True
            self._count("queries.redispatched")
            try:
                self._dispatch(shard, parked)
            except (ShardUnavailable, ServiceClosed) as error:
                parked._fail(error)
        if op == "ready":
            return
        if call is None:
            self._count("replies.orphaned")
            return
        if not call._resolve(frame):
            self._count("replies.duplicate")  # fencing keeps this at 0

    def _merge_observability(self, shard: _Shard, metrics: dict | None,
                             events: list | None) -> None:
        """Fold one worker's piggybacked export into this process:
        metric deltas under ``{shard=N}`` labels, forwarded events
        re-emitted shard-tagged. Never called for fenced frames."""
        from ..obs.federation import merge_export
        label = str(shard.index)
        if metrics is not None:
            started = time.perf_counter()
            merged = merge_export(obs.global_metrics(), metrics,
                                  {"shard": label})
            self._count("obs.merges")
            self._count("obs.series_merged", merged)
            obs.observe("supervise.obs.merge_seconds",
                        time.perf_counter() - started)
            # the shard is exporting again: its series are live
            obs.set_gauge("supervise.obs.stale", 0,
                          labels={"shard": label})
        if events:
            self._count("obs.events_forwarded", len(events))
            for record in events:
                fields = dict(record.get("fields") or {})
                fields.setdefault("shard", shard.index)
                fields.setdefault("origin", "worker")
                try:
                    obs.emit_event(
                        int(record.get("sev", obs.WARNING)),
                        str(record.get("sub", "worker")),
                        str(record.get("name", "worker.event")),
                        str(record.get("msg", "")), **fields,
                    )
                except TypeError:
                    # a field name colliding with a positional — drop
                    # the event rather than the reply that carried it
                    self._count("obs.events_dropped")

    def _on_ready(self, shard: _Shard, frame: dict) -> list[PendingCall]:
        """Caller holds ``shard.lock``: the incarnation is serving.
        Returns the parked calls to re-dispatch (outside the lock)."""
        shard.state = ShardState.UP
        shard.views = int(frame.get("views", 0))
        shard.recovered_last = bool(frame.get("recovered", False))
        shard.breaker.record_success()
        if shard.died_at is not None:
            failover = time.monotonic() - shard.died_at
            shard.died_at = None
            obs.observe("supervise.failover_seconds", failover)
            obs.emit_event(
                obs.INFO, "supervise", "supervise.shard.recovered",
                f"shard {shard.index} recovered in {failover:.3f}s "
                f"(epoch {shard.epoch}, {shard.views} views)",
                shard=shard.index, epoch=shard.epoch,
            )
        parked, shard.parked = shard.parked, []
        self._publish_shard_gauges(shard)
        shard.ready_event.set()
        return parked

    def _on_worker_death(self, shard: _Shard, epoch: int) -> None:
        with shard.lock:
            if shard.epoch != epoch or shard.state in (
                    ShardState.STOPPING, ShardState.STOPPED):
                return  # stale incarnation, or we are shutting down
            if self._closed:
                shard.state = ShardState.STOPPED
                stranded = list(shard.pending.values()) + shard.parked
                shard.pending.clear()
                shard.parked.clear()
                for call in stranded:
                    call._fail(ServiceClosed("supervisor shut down"))
                return
            died_starting = shard.state is ShardState.STARTING
            shard.state = ShardState.RECOVERING
            if shard.died_at is None:
                shard.died_at = time.monotonic()
            shard.ready_event.clear()
            inflight = list(shard.pending.values())
            shard.pending.clear()
            for call in inflight:
                if call.dispatches:
                    # the incarnation this dispatch went to is gone:
                    # seal its record so the stitched trace shows it
                    record = call.dispatches[-1]
                    if record.get("ended") is None:
                        record["ended"] = time.perf_counter()
                        record["status"] = "died"
                if call.op != "query" or call.redispatched:
                    # exactly-once: a call that already got its one
                    # re-dispatch fails instead of looping; control
                    # calls (ping/verify/checkpoint) never re-dispatch
                    call._fail(ShardUnavailable(
                        f"shard {shard.index} crashed"
                        + (" again during re-dispatch"
                           if call.redispatched else ""),
                        shard=shard.index,
                    ))
                else:
                    shard.parked.append(call)
            shard.breaker.record_failure()
            attempt = max(1, shard.breaker.consecutive_failures)
            delay = self.config.restart_backoff.delay(attempt, self._rng)
            shard.backoff_until = time.monotonic() + delay
            self._count("shard.restarts" if not died_starting
                        else "shard.start_failures")
            self._count(f"shard.{shard.index}.deaths")
            # the shard's federated series stop updating until its
            # successor's first export: mark them stale
            obs.set_gauge("supervise.obs.stale", 1,
                          labels={"shard": str(shard.index)})
            self._publish_shard_gauges(shard)
            obs.emit_event(
                obs.WARNING, "supervise", "supervise.shard.died",
                f"shard {shard.index} worker died (epoch {epoch}); "
                f"restart in {delay:.3f}s",
                shard=shard.index, epoch=epoch,
            )

    # -- the monitor (restarts, heartbeats) ----------------------------------

    def _monitor_loop(self) -> None:
        interval = self.config.tick_seconds
        while not self._stop.wait(interval):
            now = time.monotonic()
            for shard in self._shards:
                ping = False
                with shard.lock:
                    if shard.state is ShardState.RECOVERING:
                        if now < shard.backoff_until:
                            continue
                        if shard.breaker.allow():
                            self._respawn(shard)
                        else:
                            self._break_shard(shard)
                    elif shard.state is ShardState.BROKEN:
                        if shard.breaker.allow():
                            # the half-open probe: one restart attempt
                            self._respawn(shard, probe=True)
                    elif shard.state is ShardState.UP:
                        ping = self._heartbeat_due(shard, now)
                if ping:
                    try:
                        self._dispatch(
                            shard, self._new_call("ping", {}, shard.index))
                    except (ShardUnavailable, ServiceClosed):
                        pass

    def _respawn(self, shard: _Shard, *, probe: bool = False) -> None:
        """Caller holds ``shard.lock``: restart a dead worker, with the
        failover timeline's middle event (died → **respawn** →
        recovered) so the story reads whole in the event log."""
        shard.restarts += 1
        obs.emit_event(
            obs.INFO, "supervise", "supervise.shard.respawn",
            f"restarting shard {shard.index} "
            f"(epoch {shard.epoch} -> {shard.epoch + 1}, "
            f"restart #{shard.restarts}"
            + (", half-open probe" if probe else "") + ")",
            shard=shard.index, epoch=shard.epoch + 1,
            restarts=shard.restarts, probe=probe,
        )
        self._spawn(shard)

    def _break_shard(self, shard: _Shard) -> None:
        """Caller holds ``shard.lock``: crash loop → fail fast."""
        shard.state = ShardState.BROKEN
        parked, shard.parked = shard.parked, []
        for call in parked:
            call._fail(ShardUnavailable(
                f"shard {shard.index} is crash-looping "
                f"(breaker open)", shard=shard.index,
                retry_after=shard.breaker.retry_after,
            ))
        self._publish_shard_gauges(shard)
        obs.emit_event(
            obs.ERROR, "supervise", "supervise.shard.broken",
            f"shard {shard.index} is crash-looping; breaker open",
            shard=shard.index,
        )

    def _heartbeat_due(self, shard: _Shard, now: float) -> bool:
        """Caller holds ``shard.lock``: liveness for quiet shards.
        Returns True when a ping should be dispatched (by the caller,
        outside the lock)."""
        silent_for = now - shard.last_frame_at
        if silent_for > self.config.heartbeat_timeout:
            # hung worker (alive but mute): kill it, the reader's EOF
            # drives the normal death path
            if shard.proc is not None and shard.proc.poll() is None:
                shard.proc.send_signal(signal.SIGKILL)
            return False
        if (silent_for >= self.config.heartbeat_interval
                and not shard.ping_outstanding):
            shard.ping_outstanding = True
            return True
        return False

    # -- dispatch ------------------------------------------------------------

    def _new_call(self, op: str, payload: dict, shard: int) -> PendingCall:
        with self._seq_lock:
            self._call_seq += 1
            return PendingCall(self._call_seq, op, payload, shard)

    def _dispatch(self, shard: _Shard, call: PendingCall) -> None:
        """Register ``call`` and write its frame (fail-fast when down)."""
        with shard.lock:
            if shard.state is not ShardState.UP:
                raise ShardUnavailable(
                    f"shard {shard.index} is {shard.state.value}",
                    shard=shard.index,
                    retry_after=shard.breaker.retry_after,
                )
            call.epoch = shard.epoch
            if call.traced:
                call.dispatches.append({
                    "epoch": shard.epoch,
                    "started": time.perf_counter(),
                    "ended": None, "status": "inflight",
                })
            shard.pending[call.id] = call
            proc = shard.proc
            self._publish_shard_gauges(shard)
        frame = {"op": call.op, "id": call.id, **call.payload}
        try:
            with shard.write_lock:
                write_frame(proc.stdin, frame)
        except (OSError, ValueError) as error:
            # the pipe died under us: the reader thread will notice the
            # EOF and run the death path; this call was never received
            with shard.lock:
                shard.pending.pop(call.id, None)
                if call in shard.parked:
                    shard.parked.remove(call)
            raise ShardUnavailable(
                f"shard {shard.index} control pipe is down: {error}",
                shard=shard.index,
            ) from error

    def submit(self, op: str, payload: dict, shard_index: int) -> PendingCall:
        """Dispatch one call to a specific shard (fail-fast when down)."""
        if self._closed:
            raise ServiceClosed("supervisor is closed")
        call = self._new_call(op, payload, shard_index)
        self._dispatch(self._shards[shard_index], call)
        return call

    # -- the serving surface -------------------------------------------------

    def shard_for(self, key: str) -> int:
        return self.ring.lookup(key)

    def _to_result(self, shard_index: int, call: PendingCall,
                   reply: dict) -> ShardResult:
        return ShardResult(
            shard=shard_index, epoch=reply.get("epoch", -1),
            uris=reply.get("uris", []), count=reply.get("count", 0),
            elapsed_seconds=reply.get("elapsed", 0.0),
            degraded=reply.get("degraded", False),
            redispatched=call.redispatched,
        )

    def query(self, iql: str, *, key: str | None = None,
              limit: int | None = None,
              timeout: float | None = None,
              tenant: str | None = None,
              trace=None) -> ShardResult:
        """Route one query by its key (default: the query text).

        ``tenant`` rides the frame into the worker's telemetry (the
        shard's ``query.*``/``service.*`` series gain a
        ``{tenant="..."}`` variant, federated back with the shard
        label). ``trace`` is an optional
        :class:`~repro.trace.TraceCollector`: the worker executes under
        its own collector, ships the span tree back in the reply, and
        the stitched cross-process tree is grafted into ``trace``.
        """
        lookup_started = time.perf_counter()
        shard_index = self.shard_for(key if key is not None else iql)
        lookup_seconds = time.perf_counter() - lookup_started
        payload: dict = {"iql": iql, "limit": limit}
        if tenant is not None:
            payload["tenant"] = tenant
        if trace is not None:
            payload["trace"] = True
        started = time.perf_counter()
        try:
            call = self.submit("query", payload, shard_index)
            reply = call.result(timeout)
        except Exception:
            self._count("queries.failed")
            raise
        self._count("queries.served")
        if trace is not None:
            self._stitch_trace(
                trace, call, iql=iql, shard_index=shard_index,
                lookup_seconds=lookup_seconds,
                total_seconds=time.perf_counter() - started,
                rows=reply.get("count"),
            )
        return self._to_result(shard_index, call, reply)

    def _stitch_trace(self, trace, call: PendingCall, *, iql: str,
                      shard_index: int, lookup_seconds: float,
                      total_seconds: float,
                      rows: int | None = None) -> None:
        """Assemble the cross-process tree for one routed query and
        graft it into ``trace``: ring lookup, one dispatch span per
        incarnation (pipe round-trip; a dead incarnation is sealed as
        an error, the re-dispatch labeled), the worker's executor-queue
        wait, the worker's own adopted span tree, and a fence marker
        when stale replies were dropped."""
        from ..trace import Span, span_from_wire
        root = Span(operator="ShardedQuery",
                    detail=f"ShardedQuery({iql!r})", depth=0,
                    actual_rows=rows, elapsed_seconds=total_seconds,
                    status="ok")
        root.children.append(Span(
            operator="RingLookup",
            detail=f"RingLookup(shard {shard_index} of "
                   f"{len(self._shards)})",
            depth=1, elapsed_seconds=lookup_seconds, status="ok"))
        for attempt, record in enumerate(call.dispatches):
            status = record.get("status", "inflight")
            note = ", re-dispatch" if attempt else ""
            if status == "died":
                note += ", worker died"
            dispatch = Span(
                operator="Dispatch",
                detail=f"Dispatch(epoch={record['epoch']}, "
                       f"pipe round-trip{note})",
                depth=1,
                elapsed_seconds=(record["ended"] - record["started"]
                                 if record.get("ended") is not None
                                 else None),
                status={"ok": "ok", "died": "error",
                        "error": "error"}.get(status, "running"),
            )
            queue_wait = record.get("queue_wait")
            if queue_wait is not None:
                dispatch.children.append(Span(
                    operator="WorkerQueue",
                    detail="WorkerQueue(executor hand-off)",
                    depth=2, elapsed_seconds=queue_wait, status="ok"))
            for wire in record.get("spans") or ():
                dispatch.children.append(span_from_wire(wire, depth=2))
            root.children.append(dispatch)
            for name, value in (record.get("counters") or {}).items():
                trace.counters[name] = (trace.counters.get(name, 0)
                                        + int(value))
        if call.fenced:
            root.children.append(Span(
                operator="EpochFence",
                detail=f"EpochFence(dropped {call.fenced} stale "
                       f"reply frame(s))",
                depth=1, status="ok"))
        trace.graft(root)

    def explain_analyze(self, iql: str, *, key: str | None = None,
                        limit: int | None = None,
                        timeout: float | None = None,
                        tenant: str | None = None) -> "FleetExplainReport":
        """Execute one routed query under a stitched cross-process
        trace and return a renderable report (the sharded counterpart
        of ``QueryProcessor.explain_analyze``)."""
        from ..trace import TraceCollector
        trace = TraceCollector()
        result = self.query(iql, key=key, limit=limit, timeout=timeout,
                            tenant=tenant, trace=trace)
        return FleetExplainReport(result=result, trace=trace)

    def query_all(self, iql: str, *, limit: int | None = None,
                  timeout: float | None = None,
                  tenant: str | None = None) -> dict[int, ShardResult]:
        """Fan one query out to every UP shard (scatter, no gather
        ordering); shards that are down are skipped."""
        payload: dict = {"iql": iql, "limit": limit}
        if tenant is not None:
            payload["tenant"] = tenant
        calls: dict[int, PendingCall] = {}
        for shard in self._shards:
            try:
                calls[shard.index] = self.submit(
                    "query", dict(payload), shard.index)
            except ShardUnavailable:
                continue
        return {index: self._to_result(index, call, call.result(timeout))
                for index, call in calls.items()}

    def flush_telemetry(self, timeout: float | None = 30.0) -> None:
        """Nudge every UP shard with a ping so pending piggybacked
        exports land now (a worker's last deltas otherwise wait for the
        next reply or heartbeat). Best-effort: down shards are skipped,
        failures ignored."""
        calls = []
        for shard in self._shards:
            try:
                calls.append(self.submit("ping", {}, shard.index))
            except (ShardUnavailable, ServiceClosed):
                continue
        for call in calls:
            try:
                call.result(timeout)
            except Exception:
                continue

    def verify_shard(self, shard_index: int, *, seed: int = 0,
                     count: int = 25, timeout: float | None = 120.0) -> dict:
        """Run engine ≡ oracle verification inside the worker."""
        call = self.submit("verify", {"seed": seed, "count": count},
                           shard_index)
        return call.result(timeout)

    def checkpoint_shard(self, shard_index: int, *,
                         timeout: float | None = 120.0) -> dict:
        call = self.submit("checkpoint", {}, shard_index)
        return call.result(timeout)

    # -- chaos + introspection ----------------------------------------------

    def kill_shard(self, shard_index: int) -> int:
        """SIGKILL one worker (the chaos hook); returns the dead pid."""
        shard = self._shards[shard_index]
        with shard.lock:
            proc = shard.proc
        if proc is None or proc.poll() is not None:
            raise ServiceError(f"shard {shard_index} has no live worker")
        proc.send_signal(signal.SIGKILL)
        return proc.pid

    def wait_until_up(self, shard_index: int,
                      timeout: float = 60.0) -> bool:
        """Block until a shard is serving again (True) or timeout."""
        shard = self._shards[shard_index]
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with shard.lock:
                if shard.state is ShardState.UP:
                    return True
            time.sleep(0.01)
        return False

    @property
    def shards(self) -> int:
        return len(self._shards)

    def shard_states(self) -> dict[int, str]:
        states = {}
        for shard in self._shards:
            with shard.lock:
                states[shard.index] = shard.state.value
        return states

    def stats(self) -> dict[str, object]:
        """Per-shard supervision counters for dashboards and tests,
        including each shard's federated query p99 (from the merged
        ``{shard=N}`` series) and export staleness."""
        snapshot = obs.global_metrics().snapshot()
        report: dict[str, object] = {"shards": len(self._shards)}
        for shard in self._shards:
            with shard.lock:
                prefix = f"shard.{shard.index}"
                report[f"{prefix}.state"] = shard.state.value
                report[f"{prefix}.epoch"] = shard.epoch
                report[f"{prefix}.restarts"] = shard.restarts
                report[f"{prefix}.inflight"] = len(shard.pending)
                report[f"{prefix}.parked"] = len(shard.parked)
                report[f"{prefix}.views"] = shard.views
                report[f"{prefix}.breaker"] = shard.breaker.state.value
                report[f"{prefix}.pid"] = (shard.proc.pid
                                           if shard.proc is not None
                                           else None)
            latency = snapshot.get(
                f'query.latency_seconds{{shard="{shard.index}"}}')
            if latency is not None:
                report[f"{prefix}.p99_seconds"] = latency.p99
                report[f"{prefix}.served"] = latency.count
            stale = snapshot.get(
                f'supervise.obs.stale{{shard="{shard.index}"}}')
            if stale is not None:
                report[f"{prefix}.stale"] = bool(stale)
        return report
