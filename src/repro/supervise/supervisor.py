"""The shard supervisor: crash-contained workers, supervised failover.

:class:`ShardSupervisor` turns the one-process serving story into a
tree of processes: each shard is a subprocess
(:mod:`repro.supervise.worker`) owning a durability-backed
:class:`~repro.facade.Dataspace` under its own directory, and the
parent routes requests to shards by consistent hashing
(:class:`~repro.supervise.router.HashRing`), watches for worker death,
and restarts dead workers through ``Dataspace.open`` recovery.

The failure contract, in order of the failover timeline:

* **containment** — a SIGKILL, poison query, or OOM in one worker
  cannot touch the other shards: they are separate processes, and the
  supervisor keeps routing to them throughout;
* **detection** — death is noticed the moment the worker's stdout hits
  EOF (a dead process closes its pipes), backstopped by a heartbeat
  ping and ``Popen.wait`` reaping;
* **fencing** — every spawn bumps the shard's *epoch*; the worker
  stamps each reply with the epoch it was started under, and the
  supervisor discards any frame from a stale epoch, so a reply
  buffered by a dead incarnation can never race its re-dispatched
  duplicate (no double replies, ever);
* **exactly-once re-dispatch** — queries that were in flight on the
  dead incarnation (written, unanswered) are parked and re-sent *once*
  after recovery; queries are read-only and idempotent, so the second
  execution is safe, and a second crash fails them with
  :class:`~repro.core.errors.ShardUnavailable` instead of looping;
* **fail-fast during recovery** — new requests for a recovering shard
  get an immediate typed :class:`ShardUnavailable` (with
  ``retry_after`` when the breaker knows it) instead of queueing behind
  an absent worker;
* **bounded restart** — restarts back off exponentially (seeded
  jitter), and a per-shard :class:`~repro.resilience.CircuitBreaker`
  (the same class guarding flaky sources) opens after repeated crash
  loops, degrading the shard to fail-fast until the cool-down admits a
  half-open restart probe.

Locking discipline: each shard has a *state* lock (pending table,
epoch, lifecycle) and a *write* lock (frame writes to the worker's
stdin). A blocking pipe write is never performed under the state lock —
otherwise a full pipe could wedge the reader thread (which needs the
state lock to resolve replies) into a three-way deadlock with a busy
worker.

Telemetry lands in ``repro.obs`` under ``supervise.*``:
``supervise.shard.restarts``, per-shard ``epoch``/``inflight`` gauges,
breaker-state gauges, fenced-reply and re-dispatch counters, and the
``supervise.failover_seconds`` histogram (death detected → ready
again).
"""

from __future__ import annotations

import enum
import os
import random
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from .. import obs
from ..core import errors as _errors
from ..core.errors import (
    ServiceClosed,
    ServiceError,
    ShardUnavailable,
    WireError,
)
from ..resilience.policy import BreakerState, CircuitBreaker, RetryPolicy
from .router import HashRing
from .wire import read_frame, write_frame

#: numeric breaker-state encoding for the ``supervise.breaker.*`` gauges
#: (same codes as the ``resilience.breaker_state`` gauge)
_BREAKER_CODES = {
    BreakerState.CLOSED: 0,
    BreakerState.OPEN: 1,
    BreakerState.HALF_OPEN: 2,
}


class ShardState(enum.Enum):
    STARTING = "starting"      # spawned, waiting for the ready frame
    UP = "up"                  # serving
    RECOVERING = "recovering"  # dead, restart scheduled (backoff)
    BROKEN = "broken"          # crash-looping, breaker open: fail fast
    STOPPING = "stopping"      # close() in progress
    STOPPED = "stopped"


@dataclass(frozen=True)
class SupervisorConfig:
    """Tunables for the supervision loop."""

    #: dataset generator seed; shard ``i`` uses ``seed + i``
    seed: int = 42
    #: dataset scale for first spawns (None: the tiny profile)
    scale: float | None = None
    #: virtual nodes per shard on the hash ring
    ring_replicas: int = 64
    #: monitor tick (restart scheduling, heartbeats)
    tick_seconds: float = 0.02
    #: ping a quiet UP shard this often
    heartbeat_interval: float = 0.5
    #: a shard silent this long (no frame, ping unanswered) is killed
    heartbeat_timeout: float = 30.0
    #: restart backoff: delay before restart n is
    #: ``base * multiplier**(n-1)`` capped at max, plus seeded jitter
    restart_backoff: RetryPolicy = field(default_factory=lambda: RetryPolicy(
        max_attempts=1, backoff_base=0.05, backoff_multiplier=2.0,
        backoff_max=2.0, jitter=0.5,
    ))
    #: consecutive crashes (without an intervening ready) that open the
    #: shard's restart breaker
    breaker_failure_threshold: int = 5
    #: breaker cool-down before a half-open restart probe
    breaker_cooldown_seconds: float = 5.0
    #: how long start()/restarts may wait for a worker's ready frame
    ready_timeout: float = 180.0
    #: jitter seed (chaos runs stay reproducible)
    jitter_seed: int = 0
    #: extra argv appended to every worker spawn (chaos hooks)
    worker_extra_args: tuple = ()


class PendingCall:
    """One request written to a shard: a minimal future with fencing
    metadata (the epoch it was dispatched under, whether it has already
    been re-dispatched once)."""

    def __init__(self, call_id: int, op: str, payload: dict, shard: int):
        self.id = call_id
        self.op = op
        self.payload = payload
        self.shard = shard
        self.epoch = -1           # set at each (re-)dispatch
        self.redispatched = False
        self._done = threading.Event()
        self._reply: dict | None = None
        self._error: BaseException | None = None
        self._resolved = False    # guards against any double resolution

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> dict:
        """Block for the reply frame's fields; raises typed errors."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"shard {self.shard} did not answer {self.op} call "
                f"{self.id} within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._reply is not None
        return self._reply

    # -- supervisor side -----------------------------------------------------

    def _resolve(self, frame: dict) -> bool:
        """Resolve from a reply frame; False if already resolved (the
        exactly-once guard — callers count these as protocol bugs)."""
        if self._resolved:
            return False
        self._resolved = True
        if frame.get("ok", False):
            self._reply = frame
        else:
            self._error = _typed_error(frame)
        self._done.set()
        return True

    def _fail(self, error: BaseException) -> None:
        if self._resolved:
            return
        self._resolved = True
        self._error = error
        self._done.set()


def _typed_error(frame: dict) -> BaseException:
    """Rehydrate a worker-side error by its exception name."""
    name = frame.get("error", "ServiceError")
    message = frame.get("message", "worker call failed")
    candidate = getattr(_errors, name, None)
    if (isinstance(candidate, type)
            and issubclass(candidate, _errors.IdmError)):
        try:
            return candidate(message)
        except TypeError:  # exotic constructor signature
            pass
    return ServiceError(f"{name}: {message}")


@dataclass
class ShardResult:
    """One routed query's answer."""

    shard: int
    epoch: int
    uris: list
    count: int
    elapsed_seconds: float
    degraded: bool = False
    redispatched: bool = False

    def __len__(self) -> int:
        return self.count


class _Shard:
    """Supervisor-side state for one shard.

    ``lock`` guards lifecycle state and the pending table; ``write_lock``
    serializes frame writes to the worker's stdin. Never write a frame
    while holding ``lock`` (see the module docstring).
    """

    def __init__(self, index: int, directory: Path,
                 breaker: CircuitBreaker):
        self.index = index
        self.directory = directory
        self.lock = threading.RLock()
        self.write_lock = threading.Lock()
        self.state = ShardState.STOPPED
        self.epoch = 0
        self.proc: subprocess.Popen | None = None
        self.pending: dict[int, PendingCall] = {}
        self.parked: list[PendingCall] = []
        self.breaker = breaker
        self.restarts = 0          # respawns after a death (not the first)
        self.views = 0
        self.recovered_last = False
        self.died_at: float | None = None
        self.backoff_until = 0.0
        self.last_frame_at = 0.0
        self.ping_outstanding = False
        self.ready_event = threading.Event()


class ShardSupervisor:
    """Routes requests over crash-contained shard worker processes."""

    def __init__(self, directory, *, shards: int = 2,
                 config: SupervisorConfig | None = None, **overrides):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if config is None:
            config = SupervisorConfig(**overrides)
        elif overrides:
            from dataclasses import replace
            config = replace(config, **overrides)
        self.config = config
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.ring = HashRing(shards, replicas=config.ring_replicas)
        self._rng = random.Random(config.jitter_seed)
        self._shards = [
            _Shard(
                index, self.directory / f"shard-{index:02d}",
                CircuitBreaker(
                    failure_threshold=config.breaker_failure_threshold,
                    cooldown_seconds=config.breaker_cooldown_seconds,
                ),
            )
            for index in range(shards)
        ]
        self._call_seq = 0
        self._seq_lock = threading.Lock()
        self._closed = False
        self._monitor: threading.Thread | None = None
        self._stop = threading.Event()

    # -- metric plumbing -----------------------------------------------------

    @staticmethod
    def _count(name: str, amount: int = 1) -> None:
        obs.increment(f"supervise.{name}", amount)

    def _publish_shard_gauges(self, shard: _Shard) -> None:
        prefix = f"supervise.shard.{shard.index}"
        obs.set_gauge(f"{prefix}.epoch", shard.epoch)
        obs.set_gauge(f"{prefix}.inflight", len(shard.pending))
        obs.set_gauge(f"supervise.breaker.{shard.index}.state",
                      _BREAKER_CODES[shard.breaker.state])

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ShardSupervisor":
        """Spawn every shard worker and wait until all are serving."""
        if self._closed:
            raise ServiceClosed("cannot restart a closed supervisor")
        for shard in self._shards:
            with shard.lock:
                if shard.state is ShardState.STOPPED:
                    self._spawn(shard)
        deadline = time.monotonic() + self.config.ready_timeout
        for shard in self._shards:
            remaining = deadline - time.monotonic()
            if not shard.ready_event.wait(max(0.0, remaining)):
                self.close(drain=False)
                raise ServiceError(
                    f"shard {shard.index} did not become ready within "
                    f"{self.config.ready_timeout}s"
                )
        self._monitor = threading.Thread(target=self._monitor_loop,
                                         name="shard-monitor", daemon=True)
        self._monitor.start()
        obs.emit_event(obs.INFO, "supervise", "supervise.started",
                       f"supervisor serving {len(self._shards)} shard(s)",
                       shards=len(self._shards))
        return self

    def __enter__(self) -> "ShardSupervisor":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    def close(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop serving and reap every worker.

        With ``drain`` (the default) each shard's in-flight requests
        finish first; without it they fail with :class:`ServiceClosed`.
        """
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
        deadline = time.monotonic() + timeout
        for shard in self._shards:
            self._close_shard(shard, drain=drain, deadline=deadline)
        obs.emit_event(obs.INFO, "supervise", "supervise.closed",
                       "supervisor shut down")

    def _close_shard(self, shard: _Shard, *, drain: bool,
                     deadline: float) -> None:
        if drain:
            while time.monotonic() < deadline:
                with shard.lock:
                    busy = (shard.state is ShardState.UP
                            and (shard.pending or shard.parked))
                if not busy:
                    break
                time.sleep(0.005)
        with shard.lock:
            was_up = shard.state is ShardState.UP
            shard.state = ShardState.STOPPING
            stranded = list(shard.pending.values()) + shard.parked
            shard.pending.clear()
            shard.parked.clear()
            proc = shard.proc
        for call in stranded:
            call._fail(ServiceClosed("supervisor shut down"))
        if proc is not None and proc.poll() is None:
            if was_up:
                try:
                    with shard.write_lock:
                        write_frame(proc.stdin,
                                    {"op": "shutdown", "id": -1})
                except (OSError, ValueError):
                    pass
            try:
                proc.wait(timeout=max(0.1, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        with shard.lock:
            shard.state = ShardState.STOPPED

    # -- spawning and the reader thread --------------------------------------

    def _spawn(self, shard: _Shard) -> None:
        """(Re)start one worker. Caller holds ``shard.lock``."""
        shard.epoch += 1
        shard.state = ShardState.STARTING
        shard.ready_event.clear()
        shard.ping_outstanding = False
        import repro
        src_root = Path(repro.__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = (str(src_root) + os.pathsep
                             + env.get("PYTHONPATH", ""))
        argv = [
            sys.executable, "-m", "repro.supervise.worker",
            str(shard.directory),
            "--shard", str(shard.index),
            "--epoch", str(shard.epoch),
            "--seed", str(self.config.seed + shard.index),
        ]
        if self.config.scale is not None:
            argv += ["--scale", str(self.config.scale)]
        argv += list(self.config.worker_extra_args)
        shard.directory.mkdir(parents=True, exist_ok=True)
        # worker stderr goes to a per-shard log for post-mortems; the
        # protocol pipes stay clean
        with open(shard.directory / "worker.log", "ab") as log:
            shard.proc = subprocess.Popen(
                argv, stdin=subprocess.PIPE, stdout=subprocess.PIPE,
                stderr=log, env=env,
            )
        shard.last_frame_at = time.monotonic()
        reader = threading.Thread(
            target=self._reader_loop,
            args=(shard, shard.epoch, shard.proc),
            name=f"shard-{shard.index}-reader-e{shard.epoch}", daemon=True,
        )
        reader.start()

    def _reader_loop(self, shard: _Shard, epoch: int,
                     proc: subprocess.Popen) -> None:
        """Drain one incarnation's stdout until EOF, then report death."""
        while True:
            try:
                frame = read_frame(proc.stdout)
            except WireError:
                break
            if frame is None:
                break
            self._handle_frame(shard, frame)
        proc.kill()  # no-op when already dead; covers torn-frame exits
        proc.wait()  # reap: no zombies, and poll() turns truthful
        self._on_worker_death(shard, epoch)

    def _handle_frame(self, shard: _Shard, frame: dict) -> None:
        call: PendingCall | None = None
        to_redispatch: list[PendingCall] = []
        with shard.lock:
            if frame.get("epoch") != shard.epoch:
                # the fence: a stale incarnation's buffered reply must
                # not resolve (or double-resolve) anything
                self._count("replies.fenced")
                return
            shard.last_frame_at = time.monotonic()
            op = frame.get("op")
            if op == "ready":
                to_redispatch = self._on_ready(shard, frame)
            else:
                call = shard.pending.pop(frame.get("id"), None)
                if call is not None and call.op == "ping":
                    shard.ping_outstanding = False
                self._publish_shard_gauges(shard)
        # frame writes happen outside the state lock (see class docstring)
        for parked in to_redispatch:
            parked.redispatched = True
            self._count("queries.redispatched")
            try:
                self._dispatch(shard, parked)
            except (ShardUnavailable, ServiceClosed) as error:
                parked._fail(error)
        if op == "ready":
            return
        if call is None:
            self._count("replies.orphaned")
            return
        if not call._resolve(frame):
            self._count("replies.duplicate")  # fencing keeps this at 0

    def _on_ready(self, shard: _Shard, frame: dict) -> list[PendingCall]:
        """Caller holds ``shard.lock``: the incarnation is serving.
        Returns the parked calls to re-dispatch (outside the lock)."""
        shard.state = ShardState.UP
        shard.views = int(frame.get("views", 0))
        shard.recovered_last = bool(frame.get("recovered", False))
        shard.breaker.record_success()
        if shard.died_at is not None:
            failover = time.monotonic() - shard.died_at
            shard.died_at = None
            obs.observe("supervise.failover_seconds", failover)
            obs.emit_event(
                obs.INFO, "supervise", "supervise.shard.recovered",
                f"shard {shard.index} recovered in {failover:.3f}s "
                f"(epoch {shard.epoch}, {shard.views} views)",
                shard=shard.index, epoch=shard.epoch,
            )
        parked, shard.parked = shard.parked, []
        self._publish_shard_gauges(shard)
        shard.ready_event.set()
        return parked

    def _on_worker_death(self, shard: _Shard, epoch: int) -> None:
        with shard.lock:
            if shard.epoch != epoch or shard.state in (
                    ShardState.STOPPING, ShardState.STOPPED):
                return  # stale incarnation, or we are shutting down
            if self._closed:
                shard.state = ShardState.STOPPED
                stranded = list(shard.pending.values()) + shard.parked
                shard.pending.clear()
                shard.parked.clear()
                for call in stranded:
                    call._fail(ServiceClosed("supervisor shut down"))
                return
            died_starting = shard.state is ShardState.STARTING
            shard.state = ShardState.RECOVERING
            if shard.died_at is None:
                shard.died_at = time.monotonic()
            shard.ready_event.clear()
            inflight = list(shard.pending.values())
            shard.pending.clear()
            for call in inflight:
                if call.op != "query" or call.redispatched:
                    # exactly-once: a call that already got its one
                    # re-dispatch fails instead of looping; control
                    # calls (ping/verify/checkpoint) never re-dispatch
                    call._fail(ShardUnavailable(
                        f"shard {shard.index} crashed"
                        + (" again during re-dispatch"
                           if call.redispatched else ""),
                        shard=shard.index,
                    ))
                else:
                    shard.parked.append(call)
            shard.breaker.record_failure()
            attempt = max(1, shard.breaker.consecutive_failures)
            delay = self.config.restart_backoff.delay(attempt, self._rng)
            shard.backoff_until = time.monotonic() + delay
            self._count("shard.restarts" if not died_starting
                        else "shard.start_failures")
            self._count(f"shard.{shard.index}.deaths")
            self._publish_shard_gauges(shard)
            obs.emit_event(
                obs.WARNING, "supervise", "supervise.shard.died",
                f"shard {shard.index} worker died (epoch {epoch}); "
                f"restart in {delay:.3f}s",
                shard=shard.index, epoch=epoch,
            )

    # -- the monitor (restarts, heartbeats) ----------------------------------

    def _monitor_loop(self) -> None:
        interval = self.config.tick_seconds
        while not self._stop.wait(interval):
            now = time.monotonic()
            for shard in self._shards:
                ping = False
                with shard.lock:
                    if shard.state is ShardState.RECOVERING:
                        if now < shard.backoff_until:
                            continue
                        if shard.breaker.allow():
                            shard.restarts += 1
                            self._spawn(shard)
                        else:
                            self._break_shard(shard)
                    elif shard.state is ShardState.BROKEN:
                        if shard.breaker.allow():
                            # the half-open probe: one restart attempt
                            shard.restarts += 1
                            self._spawn(shard)
                    elif shard.state is ShardState.UP:
                        ping = self._heartbeat_due(shard, now)
                if ping:
                    try:
                        self._dispatch(
                            shard, self._new_call("ping", {}, shard.index))
                    except (ShardUnavailable, ServiceClosed):
                        pass

    def _break_shard(self, shard: _Shard) -> None:
        """Caller holds ``shard.lock``: crash loop → fail fast."""
        shard.state = ShardState.BROKEN
        parked, shard.parked = shard.parked, []
        for call in parked:
            call._fail(ShardUnavailable(
                f"shard {shard.index} is crash-looping "
                f"(breaker open)", shard=shard.index,
                retry_after=shard.breaker.retry_after,
            ))
        self._publish_shard_gauges(shard)
        obs.emit_event(
            obs.ERROR, "supervise", "supervise.shard.broken",
            f"shard {shard.index} is crash-looping; breaker open",
            shard=shard.index,
        )

    def _heartbeat_due(self, shard: _Shard, now: float) -> bool:
        """Caller holds ``shard.lock``: liveness for quiet shards.
        Returns True when a ping should be dispatched (by the caller,
        outside the lock)."""
        silent_for = now - shard.last_frame_at
        if silent_for > self.config.heartbeat_timeout:
            # hung worker (alive but mute): kill it, the reader's EOF
            # drives the normal death path
            if shard.proc is not None and shard.proc.poll() is None:
                shard.proc.send_signal(signal.SIGKILL)
            return False
        if (silent_for >= self.config.heartbeat_interval
                and not shard.ping_outstanding):
            shard.ping_outstanding = True
            return True
        return False

    # -- dispatch ------------------------------------------------------------

    def _new_call(self, op: str, payload: dict, shard: int) -> PendingCall:
        with self._seq_lock:
            self._call_seq += 1
            return PendingCall(self._call_seq, op, payload, shard)

    def _dispatch(self, shard: _Shard, call: PendingCall) -> None:
        """Register ``call`` and write its frame (fail-fast when down)."""
        with shard.lock:
            if shard.state is not ShardState.UP:
                raise ShardUnavailable(
                    f"shard {shard.index} is {shard.state.value}",
                    shard=shard.index,
                    retry_after=shard.breaker.retry_after,
                )
            call.epoch = shard.epoch
            shard.pending[call.id] = call
            proc = shard.proc
            self._publish_shard_gauges(shard)
        frame = {"op": call.op, "id": call.id, **call.payload}
        try:
            with shard.write_lock:
                write_frame(proc.stdin, frame)
        except (OSError, ValueError) as error:
            # the pipe died under us: the reader thread will notice the
            # EOF and run the death path; this call was never received
            with shard.lock:
                shard.pending.pop(call.id, None)
                if call in shard.parked:
                    shard.parked.remove(call)
            raise ShardUnavailable(
                f"shard {shard.index} control pipe is down: {error}",
                shard=shard.index,
            ) from error

    def submit(self, op: str, payload: dict, shard_index: int) -> PendingCall:
        """Dispatch one call to a specific shard (fail-fast when down)."""
        if self._closed:
            raise ServiceClosed("supervisor is closed")
        call = self._new_call(op, payload, shard_index)
        self._dispatch(self._shards[shard_index], call)
        return call

    # -- the serving surface -------------------------------------------------

    def shard_for(self, key: str) -> int:
        return self.ring.lookup(key)

    def _to_result(self, shard_index: int, call: PendingCall,
                   reply: dict) -> ShardResult:
        return ShardResult(
            shard=shard_index, epoch=reply.get("epoch", -1),
            uris=reply.get("uris", []), count=reply.get("count", 0),
            elapsed_seconds=reply.get("elapsed", 0.0),
            degraded=reply.get("degraded", False),
            redispatched=call.redispatched,
        )

    def query(self, iql: str, *, key: str | None = None,
              limit: int | None = None,
              timeout: float | None = None) -> ShardResult:
        """Route one query by its key (default: the query text)."""
        shard_index = self.shard_for(key if key is not None else iql)
        call = self.submit("query", {"iql": iql, "limit": limit},
                           shard_index)
        try:
            reply = call.result(timeout)
        except Exception:
            self._count("queries.failed")
            raise
        self._count("queries.served")
        return self._to_result(shard_index, call, reply)

    def query_all(self, iql: str, *, limit: int | None = None,
                  timeout: float | None = None) -> dict[int, ShardResult]:
        """Fan one query out to every UP shard (scatter, no gather
        ordering); shards that are down are skipped."""
        calls: dict[int, PendingCall] = {}
        for shard in self._shards:
            try:
                calls[shard.index] = self.submit(
                    "query", {"iql": iql, "limit": limit}, shard.index)
            except ShardUnavailable:
                continue
        return {index: self._to_result(index, call, call.result(timeout))
                for index, call in calls.items()}

    def verify_shard(self, shard_index: int, *, seed: int = 0,
                     count: int = 25, timeout: float | None = 120.0) -> dict:
        """Run engine ≡ oracle verification inside the worker."""
        call = self.submit("verify", {"seed": seed, "count": count},
                           shard_index)
        return call.result(timeout)

    def checkpoint_shard(self, shard_index: int, *,
                         timeout: float | None = 120.0) -> dict:
        call = self.submit("checkpoint", {}, shard_index)
        return call.result(timeout)

    # -- chaos + introspection ----------------------------------------------

    def kill_shard(self, shard_index: int) -> int:
        """SIGKILL one worker (the chaos hook); returns the dead pid."""
        shard = self._shards[shard_index]
        with shard.lock:
            proc = shard.proc
        if proc is None or proc.poll() is not None:
            raise ServiceError(f"shard {shard_index} has no live worker")
        proc.send_signal(signal.SIGKILL)
        return proc.pid

    def wait_until_up(self, shard_index: int,
                      timeout: float = 60.0) -> bool:
        """Block until a shard is serving again (True) or timeout."""
        shard = self._shards[shard_index]
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with shard.lock:
                if shard.state is ShardState.UP:
                    return True
            time.sleep(0.01)
        return False

    @property
    def shards(self) -> int:
        return len(self._shards)

    def shard_states(self) -> dict[int, str]:
        states = {}
        for shard in self._shards:
            with shard.lock:
                states[shard.index] = shard.state.value
        return states

    def stats(self) -> dict[str, object]:
        """Per-shard supervision counters for dashboards and tests."""
        report: dict[str, object] = {"shards": len(self._shards)}
        for shard in self._shards:
            with shard.lock:
                prefix = f"shard.{shard.index}"
                report[f"{prefix}.state"] = shard.state.value
                report[f"{prefix}.epoch"] = shard.epoch
                report[f"{prefix}.restarts"] = shard.restarts
                report[f"{prefix}.inflight"] = len(shard.pending)
                report[f"{prefix}.parked"] = len(shard.parked)
                report[f"{prefix}.views"] = shard.views
                report[f"{prefix}.breaker"] = shard.breaker.state.value
                report[f"{prefix}.pid"] = (shard.proc.pid
                                           if shard.proc is not None
                                           else None)
        return report
