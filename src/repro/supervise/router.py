"""Consistent-hash request routing: key → shard.

The supervisor routes every request by a *routing key* (a tenant id, a
session id, or by default the query text) through a classic
consistent-hash ring: each shard owns ``replicas`` virtual points on a
2^64 circle, a key lands on the first point clockwise of its own hash.
Adding or removing one shard therefore moves only ~1/N of the keyspace
— the property the ROADMAP's "shards can move" tenancy item needs, and
the reason this is a ring rather than ``hash(key) % shards``.

Hashes come from :func:`hashlib.blake2b`, not the builtin ``hash`` —
placement must be stable across processes and runs regardless of
``PYTHONHASHSEED``, because a supervisor restart must route the same
tenants to the same durable shard directories.
"""

from __future__ import annotations

import bisect
import hashlib


def stable_hash(text: str) -> int:
    """A process-independent 64-bit hash of ``text``."""
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """A consistent-hash ring over integer shard ids."""

    def __init__(self, shards: int = 0, *, replicas: int = 64):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._points: list[int] = []     # sorted virtual-node hashes
        self._owners: dict[int, int] = {}  # point hash -> shard id
        for shard in range(shards):
            self.add(shard)

    def __len__(self) -> int:
        return len({shard for shard in self._owners.values()})

    @property
    def shards(self) -> list[int]:
        return sorted(set(self._owners.values()))

    def add(self, shard: int) -> None:
        """Place ``shard``'s virtual points on the ring (idempotent)."""
        for replica in range(self.replicas):
            point = stable_hash(f"shard-{shard}/vnode-{replica}")
            # blake2b collisions across our tiny point sets are
            # effectively impossible; first placement wins if one occurs
            if point not in self._owners:
                self._owners[point] = shard
                bisect.insort(self._points, point)

    def remove(self, shard: int) -> None:
        """Take ``shard`` off the ring; its keyspace falls to the
        clockwise neighbours."""
        points = [p for p, owner in self._owners.items() if owner == shard]
        for point in points:
            del self._owners[point]
            index = bisect.bisect_left(self._points, point)
            del self._points[index]

    def lookup(self, key: str) -> int:
        """The shard owning ``key`` (first point clockwise of its hash)."""
        if not self._points:
            raise ValueError("hash ring is empty")
        index = bisect.bisect_right(self._points, stable_hash(key))
        if index == len(self._points):
            index = 0
        return self._owners[self._points[index]]

    def spread(self, keys: list[str]) -> dict[int, int]:
        """How many of ``keys`` land on each shard (balance diagnostics)."""
        counts: dict[int, int] = {shard: 0 for shard in self.shards}
        for key in keys:
            counts[self.lookup(key)] += 1
        return counts
