"""``repro.supervise`` — crash-contained shard workers, supervised failover.

The multi-process serving layer: shard workers are subprocesses each
owning a durability-backed :class:`~repro.facade.Dataspace`
(checkpoint + WAL under its own directory); the
:class:`ShardSupervisor` in the parent routes requests by consistent
hashing, detects worker death, restarts workers through
``Dataspace.open`` recovery with bounded backoff and a per-shard
circuit breaker, and fences replies by shard epoch so failover never
loses an acknowledged result or delivers a duplicate one.

Quick use::

    from repro.supervise import ShardSupervisor

    with ShardSupervisor("/tmp/space", shards=4, seed=42) as sup:
        result = sup.query('"database"', key="tenant-17")
        sup.kill_shard(0)                  # chaos: SIGKILL one worker
        sup.wait_until_up(0)               # supervised recovery
        report = sup.verify_shard(0)       # engine ≡ oracle, in-worker
"""

from .router import HashRing, stable_hash
from .supervisor import (
    FleetExplainReport,
    PendingCall,
    ShardResult,
    ShardState,
    ShardSupervisor,
    SupervisorConfig,
)
from .wire import MAX_FRAME_BYTES, read_frame, write_frame

__all__ = [
    "FleetExplainReport", "HashRing", "MAX_FRAME_BYTES", "PendingCall",
    "ShardResult", "ShardState", "ShardSupervisor", "SupervisorConfig",
    "read_frame", "stable_hash", "write_frame",
]
