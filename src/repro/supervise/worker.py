"""One shard worker: a subprocess owning a durability-backed dataspace.

Run by the supervisor as::

    python -m repro.supervise.worker <directory> --shard 2 --epoch 5 ...

On start the worker either *recovers* its shard — the durability
directory already has a ``config.json``, so ``Dataspace.open`` loads
the latest checkpoint and replays the WAL tail — or, on the very first
spawn, generates the shard's synthetic dataspace (seeded per shard),
syncs it under ``fsync="always"`` and cuts an initial checkpoint so
every later restart is a fast recovery rather than a re-sync. It then
announces itself with a ``ready`` frame and serves requests from stdin.

Two threads split the serving loop so a long query never starves
liveness: the main thread reads frames and answers control operations
(``ping``, ``crash``, ``shutdown``) immediately, while queries are
handed to a single executor thread — per-shard execution stays serial
(the single-threaded index structures need no lock), concurrency comes
from the supervisor running many shards.

Every reply frame carries the worker's ``--epoch``, the incarnation
number the supervisor fences replies with. The ``crash`` op and
``--crash-after-queries N`` deliver a real ``SIGKILL`` to this process
(the :mod:`repro.durability.crashchild` pattern): no flush, no atexit —
exactly the failure the supervisor exists to contain.

The worker is also the fleet's telemetry origin. A query frame with
``"trace": true`` executes under a :class:`~repro.trace.TraceCollector`
and the reply carries the span tree in compact wire form (plus the
substrate counters and the executor-queue wait), which the supervisor
grafts under its own dispatch span — one stitched EXPLAIN ANALYZE
across both processes. Independently, every reply may piggyback a
``metrics`` delta export of this process's registry and any pending
``events`` (severity >= warning) — see :mod:`repro.obs.federation`; the
supervisor merges them under ``{shard=N}`` labels. Piggybacking rides
existing replies (heartbeat pongs guarantee flow while idle), so
federation adds no frames of its own.
"""

from __future__ import annotations

import argparse
import os
import queue
import signal
import sys
import threading
import time


def _sigkill_self() -> None:  # pragma: no cover - the process dies here
    os.kill(os.getpid(), signal.SIGKILL)


class ShardWorker:
    """The serving loop around one shard's dataspace."""

    def __init__(self, dataspace, *, shard: int, epoch: int,
                 recovered: bool, crash_after_queries: int | None = None,
                 stdin=None, stdout=None,
                 metrics_interval: float | None = 1.0):
        self.dataspace = dataspace
        self.shard = shard
        self.epoch = epoch
        self.recovered = recovered
        self.crash_after_queries = crash_after_queries
        self.stdin = stdin if stdin is not None else sys.stdin.buffer
        self.stdout = stdout if stdout is not None else sys.stdout.buffer
        self.queries_seen = 0
        self.queries_served = 0
        self._write_lock = threading.Lock()
        self._work: queue.Queue = queue.Queue()
        self._stopping = threading.Event()
        #: metrics/event piggybacking (None / <= 0 disables federation);
        #: a fresh exporter per process is what makes counter deltas
        #: crash-safe — see repro.obs.federation
        self.metrics_interval = metrics_interval
        self._exporter = None
        self._event_buffer = None
        self._last_export = 0.0
        if metrics_interval is not None and metrics_interval > 0:
            from .. import obs
            from ..obs.federation import ForwardingEventBuffer, RegistryExporter
            self._exporter = RegistryExporter(obs.global_metrics())
            self._event_buffer = ForwardingEventBuffer()
            self._event_buffer.attach(obs.global_events())

    # -- frames --------------------------------------------------------------

    def _send(self, payload: dict) -> None:
        from .wire import write_frame
        payload.setdefault("epoch", self.epoch)
        with self._write_lock:
            write_frame(self.stdout, payload)

    def _attach_observability(self, payload: dict, *,
                              force: bool = False) -> None:
        """Piggyback a metrics delta + pending events on an outgoing
        reply when the export interval elapsed (or on ``force``)."""
        if self._exporter is None:
            return
        now = time.monotonic()
        if not force and now - self._last_export < self.metrics_interval:
            return
        self._last_export = now
        export = self._exporter.export()
        if export is not None:
            payload["metrics"] = export
        events = self._event_buffer.drain()
        if events:
            payload["events"] = events

    def _reply_ok(self, request: dict, **fields) -> None:
        payload = {"op": "reply", "id": request.get("id"),
                   "ok": True, **fields}
        self._attach_observability(payload)
        self._send(payload)

    def _reply_error(self, request: dict, error: BaseException) -> None:
        payload = {"op": "reply", "id": request.get("id"), "ok": False,
                   "error": type(error).__name__, "message": str(error)}
        self._attach_observability(payload)
        self._send(payload)

    # -- the executor thread (queries, checkpoints, verification) -----------

    def _executor_loop(self) -> None:
        while True:
            request = self._work.get()
            if request is None:
                return
            try:
                self._execute(request)
            except BaseException as error:  # noqa: BLE001 - reply, keep serving
                self._reply_error(request, error)

    def _execute(self, request: dict) -> None:
        op = request["op"]
        if op == "query":
            self._execute_query(request)
        elif op == "checkpoint":
            info = self.dataspace.checkpoint()
            self._reply_ok(request, lsn=info.lsn,
                           segments_truncated=info.segments_truncated)
        elif op == "verify":
            from ..durability import verify_engine_matches_oracle
            report = verify_engine_matches_oracle(
                self.dataspace, seed=request.get("seed", 0),
                count=request.get("count", 25),
            )
            self._reply_ok(request, checked=report.checked,
                           verify_ok=report.ok,
                           mismatches=len(report.mismatches))
        elif op == "stats":
            self._reply_ok(request, views=self.dataspace.view_count,
                           served=self.queries_served, pid=os.getpid(),
                           shard=self.shard)
        else:
            self._reply_error(request,
                              ValueError(f"unknown operation {op!r}"))

    def _execute_query(self, request: dict) -> None:
        """One routed query: traced when the frame asks for it, with
        worker-side ``service.*`` accounting so the federated fleet
        snapshot carries serving metrics from every shard."""
        from .. import obs

        queue_wait = None
        enqueued = request.get("_enqueued")
        if enqueued is not None:
            queue_wait = time.perf_counter() - enqueued
        tenant = request.get("tenant")
        trace = None
        if request.get("trace"):
            from ..trace import TraceCollector
            trace = TraceCollector()
        if not self.dataspace._synced:
            self.dataspace.sync()
        processor = self.dataspace.processor
        started = time.perf_counter()
        result = processor.execute_prepared(
            processor.prepare(request["iql"]), limit=request.get("limit"),
            trace=trace, tenant=tenant,
        )
        elapsed = time.perf_counter() - started
        self.queries_served += 1
        obs.increment("service.queries.served")
        obs.observe("service.latency.execute_seconds", elapsed)
        if queue_wait is not None:
            obs.observe("service.latency.queue_seconds", queue_wait)
            obs.observe("service.latency.total_seconds",
                        queue_wait + elapsed)
        if tenant:
            obs.increment("service.queries.served",
                          labels={"tenant": tenant})
            obs.observe("service.latency.execute_seconds", elapsed,
                        labels={"tenant": tenant})
        extra: dict = {}
        if trace is not None:
            from ..trace import span_to_wire
            extra["spans"] = [span_to_wire(root) for root in trace.roots]
            if trace.counters:
                extra["counters"] = dict(trace.counters)
        if queue_wait is not None:
            extra["queue_wait"] = queue_wait
        self._reply_ok(
            request, uris=list(result.uris()), count=len(result),
            elapsed=elapsed, degraded=bool(result.is_degraded), **extra,
        )

    # -- the main loop (reads frames, keeps liveness) ------------------------

    def serve(self) -> int:
        executor = threading.Thread(target=self._executor_loop,
                                    name="shard-executor", daemon=True)
        executor.start()
        ready = {"op": "ready", "shard": self.shard,
                 "pid": os.getpid(),
                 "views": self.dataspace.view_count,
                 "recovered": self.recovered}
        # force an export on ready: the generation/recovery metrics ship
        # immediately instead of waiting out the first interval
        self._attach_observability(ready, force=True)
        self._send(ready)
        from ..core.errors import WireError
        from .wire import read_frame
        try:
            while True:
                try:
                    request = read_frame(self.stdin)
                except WireError:
                    break  # the control pipe is torn: nothing to serve
                if request is None:
                    break  # supervisor closed our stdin (or died)
                op = request.get("op")
                if op == "ping":
                    self._reply_ok(request, pong=True,
                                   views=self.dataspace.view_count)
                elif op == "crash":
                    _sigkill_self()
                elif op == "shutdown":
                    self._reply_ok(request, stopped=True)
                    break
                elif op == "query":
                    self.queries_seen += 1
                    if (self.crash_after_queries is not None
                            and self.queries_seen > self.crash_after_queries):
                        # die with the request unanswered: the supervisor
                        # must re-dispatch it exactly once after recovery
                        _sigkill_self()
                    # stamp the hand-off so the executor can report how
                    # long the query sat in the worker's queue
                    request["_enqueued"] = time.perf_counter()
                    self._work.put(request)
                else:
                    self._work.put(request)
        finally:
            self._work.put(None)
            executor.join(timeout=30.0)
            self.dataspace.close()
        return 0


def open_or_generate(directory: str, *, seed: int, scale: float | None):
    """The worker's dataspace: recover if the directory has history,
    generate + sync + checkpoint on the first spawn."""
    from ..dataset import TINY_PROFILE
    from ..durability import DurabilityConfig, load_config
    from ..facade import Dataspace
    from ..imapsim.latency import no_latency

    if load_config(directory) is not None:
        dataspace = Dataspace.open(directory)
        return dataspace, True
    config = DurabilityConfig(directory=directory, fsync="always")
    if scale is not None:
        dataspace = Dataspace.generate(scale=scale, seed=seed,
                                       imap_latency=no_latency(),
                                       durability=config)
    else:
        dataspace = Dataspace.generate(profile=TINY_PROFILE, seed=seed,
                                       imap_latency=no_latency(),
                                       durability=config)
    dataspace.sync()
    # restarts recover from this checkpoint instead of replaying the
    # whole initial-scan WAL (the bench_coldstart advantage, per shard)
    dataspace.checkpoint()
    return dataspace, False


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro.supervise.worker")
    parser.add_argument("directory", help="this shard's durability directory")
    parser.add_argument("--shard", type=int, default=0)
    parser.add_argument("--epoch", type=int, default=0,
                        help="incarnation number (the fencing token)")
    parser.add_argument("--seed", type=int, default=42,
                        help="dataset generator seed for the first spawn")
    parser.add_argument("--scale", type=float, default=None,
                        help="dataset scale (default: the tiny profile)")
    parser.add_argument("--crash-after-queries", type=int, default=None,
                        help="SIGKILL self when query N+1 arrives, before "
                             "replying (chaos hook)")
    parser.add_argument("--metrics-interval", type=float, default=1.0,
                        help="min seconds between piggybacked metric "
                             "exports (<= 0 disables federation)")
    args = parser.parse_args(argv)

    dataspace, recovered = open_or_generate(
        args.directory, seed=args.seed, scale=args.scale
    )
    worker = ShardWorker(
        dataspace, shard=args.shard, epoch=args.epoch, recovered=recovered,
        crash_after_queries=args.crash_after_queries,
        metrics_interval=args.metrics_interval,
    )
    return worker.serve()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
