"""The supervisor/worker wire protocol: length-prefixed JSON frames.

One frame is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON. The framing is symmetric — the supervisor writes
request frames to the worker's stdin, the worker writes response frames
to its stdout — and deliberately minimal: no negotiation, no streaming
bodies, one JSON object per frame.

Every frame carries:

``op``
    the operation (``query``, ``ping``, ``checkpoint``, ``verify``,
    ``stats``, ``shutdown``, ``crash``) or, worker → supervisor,
    ``ready`` / ``reply``;
``id``
    the request id replies echo (``ready`` frames have no id);
``epoch``
    the shard incarnation that produced the frame — the fencing token:
    the supervisor discards any reply whose epoch is not the shard's
    current one, so a buffered reply from a dead incarnation can never
    resolve a re-dispatched request twice.

Frames may carry observability payloads (all optional; DESIGN.md §4k):
``query`` requests take ``trace`` (bool: execute under a collector)
and ``tenant`` (label for the worker's telemetry); query replies then
carry ``spans`` (the worker's span tree in the compact wire form of
:func:`repro.trace.span_to_wire`), ``counters`` and ``queue_wait``.
Any worker → supervisor frame may piggyback ``metrics`` (a
:class:`repro.obs.federation.RegistryExporter` delta export) and
``events`` (pending warning+ event records) — fenced frames are
dropped whole, piggybacked payloads included.

Reading is strict: a length over :data:`MAX_FRAME_BYTES`, a truncated
payload, or undecodable JSON raises
:class:`~repro.core.errors.WireError` — once framing is lost the stream
cannot be resynchronized, and the supervisor treats it like a worker
death. EOF before the first length byte is the one *clean* end of
stream and returns ``None``.
"""

from __future__ import annotations

import json
import struct
from typing import BinaryIO

from ..core.errors import WireError

#: Hard ceiling on one frame's JSON payload. Query results are URI
#: lists, so this allows ~100k URIs per reply while still catching a
#: desynchronized stream (whose "length" is effectively random bytes).
MAX_FRAME_BYTES = 32 * 1024 * 1024

_LENGTH = struct.Struct(">I")


def write_frame(stream: BinaryIO, payload: dict) -> None:
    """Serialize ``payload`` and write one frame, flushed.

    The flush matters: both ends block on :func:`read_frame`, so a
    frame sitting in a userspace buffer is a deadlock, not a delay.
    """
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(
            f"frame of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    stream.write(_LENGTH.pack(len(body)) + body)
    stream.flush()


def _read_exact(stream: BinaryIO, count: int) -> bytes | None:
    """Read exactly ``count`` bytes; None on immediate EOF."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            if not chunks:
                return None
            raise WireError(
                f"stream truncated: wanted {count} bytes, "
                f"got {count - remaining}"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(stream: BinaryIO) -> dict | None:
    """Read one frame; ``None`` on clean EOF (stream closed at a frame
    boundary). Raises :class:`WireError` on anything torn."""
    header = _read_exact(stream, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte "
            f"limit (desynchronized stream?)"
        )
    body = _read_exact(stream, length)
    if body is None:
        raise WireError("stream truncated between length and payload")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise WireError(f"undecodable frame payload: {error}") from error
    if not isinstance(payload, dict):
        raise WireError(
            f"frame payload must be a JSON object, got {type(payload).__name__}"
        )
    return payload
