"""Node types mirroring the XML Information Set's core items.

The paper (Section 3.3) instantiates document, element, attribute and
character information items in iDM. We additionally keep comments and
processing instructions so round-tripping is lossless, but converters may
ignore them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


class XmlNode:
    """Base class for all information items."""

    __slots__ = ()


@dataclass(slots=True)
class XmlText(XmlNode):
    """A character information item: a run of text content."""

    text: str

    def __repr__(self) -> str:
        preview = self.text[:24] + ("..." if len(self.text) > 24 else "")
        return f"XmlText({preview!r})"


@dataclass(slots=True)
class XmlComment(XmlNode):
    """A comment (``<!-- ... -->``). Preserved for round-tripping."""

    text: str


@dataclass(slots=True)
class XmlPI(XmlNode):
    """A processing instruction (``<?target data?>``)."""

    target: str
    data: str


@dataclass(slots=True)
class XmlElement(XmlNode):
    """An element information item: name, attributes and ordered children."""

    name: str
    attributes: dict[str, str] = field(default_factory=dict)
    children: list[XmlNode] = field(default_factory=list)

    def append(self, child: XmlNode) -> XmlNode:
        self.children.append(child)
        return child

    def child_elements(self) -> list["XmlElement"]:
        return [c for c in self.children if isinstance(c, XmlElement)]

    def find(self, name: str) -> "XmlElement | None":
        """First direct child element with the given name."""
        for child in self.children:
            if isinstance(child, XmlElement) and child.name == name:
                return child
        return None

    def find_all(self, name: str) -> list["XmlElement"]:
        """All direct child elements with the given name."""
        return [c for c in self.children
                if isinstance(c, XmlElement) and c.name == name]

    def iter(self) -> Iterator["XmlElement"]:
        """Depth-first iteration over this element and all descendants."""
        yield self
        for child in self.children:
            if isinstance(child, XmlElement):
                yield from child.iter()

    def text(self) -> str:
        """Concatenated character data of this subtree (document order)."""
        parts: list[str] = []
        stack: list[XmlNode] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, XmlText):
                parts.append(node.text)
            elif isinstance(node, XmlElement):
                stack.extend(reversed(node.children))
        return "".join(parts)

    def __repr__(self) -> str:
        return (f"XmlElement({self.name!r}, attrs={len(self.attributes)}, "
                f"children={len(self.children)})")


@dataclass(slots=True)
class XmlDocument(XmlNode):
    """A document information item: one root element plus prolog/epilog
    miscellany (comments and PIs)."""

    root: XmlElement
    prolog: list[XmlNode] = field(default_factory=list)
    epilog: list[XmlNode] = field(default_factory=list)
    declaration: dict[str, str] | None = None

    def iter(self) -> Iterator[XmlElement]:
        return self.root.iter()

    def __repr__(self) -> str:
        return f"XmlDocument(root={self.root.name!r})"
