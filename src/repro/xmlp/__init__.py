"""A from-scratch XML parser producing an Infoset-like tree.

The paper instantiates the core subset of the XML Information Set
(document, element, attribute, character items) in iDM; this package
provides the parsing substrate: :func:`parse` turns XML text into
:class:`XmlDocument` / :class:`XmlElement` / :class:`XmlText` nodes, and
:func:`serialize` writes a tree back out.
"""

from .infoset import XmlComment, XmlDocument, XmlElement, XmlNode, XmlPI, XmlText
from .parser import parse
from .writer import serialize

__all__ = [
    "XmlComment", "XmlDocument", "XmlElement", "XmlNode", "XmlPI", "XmlText",
    "parse", "serialize",
]
