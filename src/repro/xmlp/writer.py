"""Serialize an Infoset tree back to XML text.

The writer pairs with :mod:`repro.xmlp.parser` to provide round-tripping:
``parse(serialize(doc))`` reproduces the tree (whitespace inside text is
preserved verbatim; attribute order follows the dict).
"""

from __future__ import annotations

from .infoset import XmlComment, XmlDocument, XmlElement, XmlNode, XmlPI, XmlText


def _escape_text(text: str) -> str:
    return (text.replace("&", "&amp;")
                .replace("<", "&lt;")
                .replace(">", "&gt;"))


def _escape_attribute(value: str) -> str:
    return (value.replace("&", "&amp;")
                 .replace("<", "&lt;")
                 .replace('"', "&quot;"))


def serialize(node: XmlNode | XmlDocument, *, declaration: bool = False) -> str:
    """Render a node (or whole document) as XML text."""
    parts: list[str] = []
    if isinstance(node, XmlDocument):
        if declaration or node.declaration:
            decl = node.declaration or {"version": "1.0"}
            attrs = " ".join(f'{k}="{_escape_attribute(v)}"'
                             for k, v in decl.items())
            parts.append(f"<?xml {attrs}?>")
        for misc in node.prolog:
            _write(misc, parts)
        _write(node.root, parts)
        for misc in node.epilog:
            _write(misc, parts)
    else:
        _write(node, parts)
    return "".join(parts)


def _write(node: XmlNode, parts: list[str]) -> None:
    if isinstance(node, XmlText):
        parts.append(_escape_text(node.text))
    elif isinstance(node, XmlComment):
        parts.append(f"<!--{node.text}-->")
    elif isinstance(node, XmlPI):
        data = f" {node.data}" if node.data else ""
        parts.append(f"<?{node.target}{data}?>")
    elif isinstance(node, XmlElement):
        attrs = "".join(f' {name}="{_escape_attribute(value)}"'
                        for name, value in node.attributes.items())
        if not node.children:
            parts.append(f"<{node.name}{attrs}/>")
            return
        parts.append(f"<{node.name}{attrs}>")
        for child in node.children:
            _write(child, parts)
        parts.append(f"</{node.name}>")
    else:  # pragma: no cover - defensive
        raise TypeError(f"cannot serialize {type(node)}")
