"""A recursive-descent XML parser.

Covers the subset of XML 1.0 needed for the personal-dataspace workloads:
elements, attributes (single- or double-quoted), character data, CDATA
sections, comments, processing instructions, the XML declaration, the
five predefined entities plus decimal/hexadecimal character references,
and a DOCTYPE declaration (skipped, internal subsets included). Namespace
prefixes are kept verbatim in names — the converters treat names as
opaque strings, matching the paper's treatment.

Errors raise :class:`~repro.core.errors.XmlParseError` with line/column.
"""

from __future__ import annotations

from ..core.errors import XmlParseError
from .infoset import XmlComment, XmlDocument, XmlElement, XmlNode, XmlPI, XmlText

_PREDEFINED_ENTITIES = {
    "lt": "<", "gt": ">", "amp": "&", "apos": "'", "quot": '"',
}

_NAME_START_EXTRA = set("_:")
_NAME_EXTRA = set("_:.-")


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch in _NAME_START_EXTRA


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch in _NAME_EXTRA


class _Scanner:
    """Character cursor with line/column tracking for error messages."""

    __slots__ = ("text", "pos", "length")

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.length = len(text)

    def location(self) -> tuple[int, int]:
        consumed = self.text[: self.pos]
        line = consumed.count("\n") + 1
        column = self.pos - (consumed.rfind("\n") + 1) + 1
        return line, column

    def error(self, message: str) -> XmlParseError:
        line, column = self.location()
        return XmlParseError(message, line=line, column=column)

    @property
    def at_end(self) -> bool:
        return self.pos >= self.length

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < self.length else ""

    def advance(self, count: int = 1) -> None:
        self.pos += count

    def starts_with(self, token: str) -> bool:
        return self.text.startswith(token, self.pos)

    def expect(self, token: str) -> None:
        if not self.starts_with(token):
            raise self.error(f"expected {token!r}")
        self.pos += len(token)

    def skip_whitespace(self) -> None:
        while self.pos < self.length and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def read_name(self) -> str:
        start = self.pos
        if self.at_end or not _is_name_start(self.text[self.pos]):
            raise self.error("expected a name")
        self.pos += 1
        while self.pos < self.length and _is_name_char(self.text[self.pos]):
            self.pos += 1
        return self.text[start:self.pos]

    def read_until(self, token: str, *, what: str) -> str:
        index = self.text.find(token, self.pos)
        if index < 0:
            raise self.error(f"unterminated {what}: missing {token!r}")
        out = self.text[self.pos:index]
        self.pos = index + len(token)
        return out


def _decode_entities(raw: str, scanner: _Scanner) -> str:
    """Resolve entity and character references in text or attribute values."""
    if "&" not in raw:
        return raw
    out: list[str] = []
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = raw.find(";", i + 1)
        if end < 0:
            raise scanner.error("unterminated entity reference")
        body = raw[i + 1:end]
        if body.startswith("#x") or body.startswith("#X"):
            try:
                out.append(chr(int(body[2:], 16)))
            except ValueError:
                raise scanner.error(f"bad character reference &{body};") from None
        elif body.startswith("#"):
            try:
                out.append(chr(int(body[1:])))
            except ValueError:
                raise scanner.error(f"bad character reference &{body};") from None
        elif body in _PREDEFINED_ENTITIES:
            out.append(_PREDEFINED_ENTITIES[body])
        else:
            raise scanner.error(f"unknown entity &{body};")
        i = end + 1
    return "".join(out)


def parse(text: str) -> XmlDocument:
    """Parse XML text into an :class:`XmlDocument`.

    Raises :class:`~repro.core.errors.XmlParseError` on malformed input.
    """
    scanner = _Scanner(text)
    declaration = _parse_declaration(scanner)
    prolog: list[XmlNode] = []
    root: XmlElement | None = None
    epilog: list[XmlNode] = []

    while not scanner.at_end:
        scanner.skip_whitespace()
        if scanner.at_end:
            break
        if scanner.starts_with("<!--"):
            node: XmlNode = _parse_comment(scanner)
        elif scanner.starts_with("<!DOCTYPE"):
            _skip_doctype(scanner)
            continue
        elif scanner.starts_with("<?"):
            node = _parse_pi(scanner)
        elif scanner.peek() == "<":
            if root is not None:
                raise scanner.error("multiple root elements")
            root = _parse_element(scanner)
            continue
        else:
            raise scanner.error("content outside the root element")
        (prolog if root is None else epilog).append(node)

    if root is None:
        raise scanner.error("document has no root element")
    return XmlDocument(root=root, prolog=prolog, epilog=epilog,
                       declaration=declaration)


def _parse_declaration(scanner: _Scanner) -> dict[str, str] | None:
    scanner.skip_whitespace()
    if not scanner.starts_with("<?xml"):
        return None
    # <?xml must be followed by whitespace (else it is a PI named xml...)
    after = scanner.peek(5)
    if after not in " \t\r\n":
        return None
    scanner.advance(5)
    declaration: dict[str, str] = {}
    while True:
        scanner.skip_whitespace()
        if scanner.starts_with("?>"):
            scanner.advance(2)
            return declaration
        if scanner.at_end:
            raise scanner.error("unterminated XML declaration")
        name = scanner.read_name()
        scanner.skip_whitespace()
        scanner.expect("=")
        scanner.skip_whitespace()
        declaration[name] = _parse_quoted(scanner)


def _parse_quoted(scanner: _Scanner) -> str:
    quote = scanner.peek()
    if quote not in ("'", '"'):
        raise scanner.error("expected a quoted value")
    scanner.advance()
    raw = scanner.read_until(quote, what="attribute value")
    if "<" in raw:
        raise scanner.error("'<' is not allowed in attribute values")
    return _decode_entities(raw, scanner)


def _parse_comment(scanner: _Scanner) -> XmlComment:
    scanner.expect("<!--")
    body = scanner.read_until("-->", what="comment")
    if "--" in body:
        raise scanner.error("'--' is not allowed inside comments")
    return XmlComment(body)


def _parse_pi(scanner: _Scanner) -> XmlPI:
    scanner.expect("<?")
    target = scanner.read_name()
    if target.lower() == "xml":
        raise scanner.error("processing instruction may not be named 'xml'")
    scanner.skip_whitespace()
    data = scanner.read_until("?>", what="processing instruction")
    return XmlPI(target, data)


def _skip_doctype(scanner: _Scanner) -> None:
    scanner.expect("<!DOCTYPE")
    depth = 1
    while depth > 0:
        if scanner.at_end:
            raise scanner.error("unterminated DOCTYPE")
        ch = scanner.peek()
        if ch == "<":
            depth += 1
        elif ch == ">":
            depth -= 1
        scanner.advance()


def _parse_element(scanner: _Scanner) -> XmlElement:
    scanner.expect("<")
    name = scanner.read_name()
    element = XmlElement(name)
    # attributes
    while True:
        scanner.skip_whitespace()
        if scanner.starts_with("/>"):
            scanner.advance(2)
            return element
        if scanner.starts_with(">"):
            scanner.advance(1)
            break
        if scanner.at_end:
            raise scanner.error(f"unterminated start tag <{name}>")
        attr_name = scanner.read_name()
        scanner.skip_whitespace()
        scanner.expect("=")
        scanner.skip_whitespace()
        if attr_name in element.attributes:
            raise scanner.error(f"duplicate attribute {attr_name!r}")
        element.attributes[attr_name] = _parse_quoted(scanner)
    # content
    while True:
        if scanner.at_end:
            raise scanner.error(f"missing end tag </{name}>")
        if scanner.starts_with("</"):
            scanner.advance(2)
            end_name = scanner.read_name()
            if end_name != name:
                raise scanner.error(
                    f"mismatched end tag: expected </{name}>, got </{end_name}>"
                )
            scanner.skip_whitespace()
            scanner.expect(">")
            return element
        if scanner.starts_with("<!--"):
            element.append(_parse_comment(scanner))
        elif scanner.starts_with("<![CDATA["):
            scanner.advance(len("<![CDATA["))
            element.append(XmlText(scanner.read_until("]]>", what="CDATA section")))
        elif scanner.starts_with("<?"):
            element.append(_parse_pi(scanner))
        elif scanner.peek() == "<":
            element.append(_parse_element(scanner))
        else:
            start = scanner.pos
            index = scanner.text.find("<", start)
            if index < 0:
                index = scanner.length
            raw = scanner.text[start:index]
            scanner.pos = index
            if "]]>" in raw:
                raise scanner.error("']]>' is not allowed in character data")
            element.append(XmlText(_decode_entities(raw, scanner)))
