"""The unified metrics registry: counters, gauges and histograms.

Grown out of ``repro.service.metrics`` (which survives as a
compatibility shim importing from here) into the process-global
telemetry spine: every subsystem records under one dotted naming
convention —

* ``query.*``       — the query processor and batched engine
* ``sync.*``        — the synchronization manager and push bus
* ``index.*``       — index/replica/catalog sizes (callback gauges)
* ``resilience.*``  — source guards: retries, breakers
* ``service.*``     — the concurrent query service

No external dependency — histograms keep raw observations (bounded by
a reservoir) and compute p50/p95/p99 on snapshot, which is exact for
the request volumes the benchmarks drive. All types are thread-safe;
workers record from pool threads while clients snapshot from theirs.

Metrics may carry **labels** (``registry.counter("resilience.retries",
labels={"source": "imap"})``); each distinct label set is its own time
series, exactly as in Prometheus. Snapshots key labeled series as
``name{key="value"}``. **Callback gauges** are evaluated only at
snapshot time and hold their owner by weak reference, so instrumented
structures (indexes, breakers) pay nothing on their hot paths and die
without deregistration ceremony.

:meth:`MetricsRegistry.render_prometheus` emits the text exposition
format (``# TYPE`` comments, escaped labels, histograms as summaries);
:meth:`MetricsRegistry.snapshot_json` is the machine-readable tree.
"""

from __future__ import annotations

import json
import threading
import weakref
from dataclasses import dataclass, field
from typing import Callable, Mapping

#: A label set, normalized to a sorted tuple of pairs (hashable).
LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, str] | None) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _series_name(name: str, labels: LabelKey) -> str:
    """The flat snapshot key: ``name`` or ``name{k="v",...}``."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing counter."""

    def __init__(self, name: str, labels: Mapping[str, str] | None = None):
        self.name = name
        self.labels = dict(labels or {})
        self._value = 0
        self._lock = threading.Lock()

    def increment(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A value that goes up and down — set directly, or computed by a
    callback at snapshot time (see
    :meth:`MetricsRegistry.register_gauge_callback`)."""

    def __init__(self, name: str, labels: Mapping[str, str] | None = None):
        self.name = name
        self.labels = dict(labels or {})
        self._value = 0.0
        self._lock = threading.Lock()
        # callback gauges: fn(owner) evaluated lazily; owner weakly held
        self._callback: Callable | None = None
        self._owner_ref: weakref.ref | None = None

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        callback = self._callback
        if callback is not None:
            if self._owner_ref is not None:
                owner = self._owner_ref()
                if owner is None:
                    return 0.0
                try:
                    return float(callback(owner))
                except Exception:
                    return 0.0
            try:
                return float(callback())
            except Exception:
                return 0.0
        with self._lock:
            return self._value

    @property
    def has_callback(self) -> bool:
        """True when reading ``value`` runs a callback (which may be
        arbitrarily expensive — e.g. an index-size walk)."""
        return self._callback is not None

    @property
    def dead(self) -> bool:
        """True for a callback gauge whose owner was collected."""
        return (self._callback is not None
                and self._owner_ref is not None
                and self._owner_ref() is None)


@dataclass(frozen=True)
class HistogramSnapshot:
    """One histogram's summary statistics at a point in time."""

    count: int
    minimum: float
    maximum: float
    mean: float
    p50: float
    p95: float
    p99: float
    total: float = 0.0

    @classmethod
    def empty(cls) -> "HistogramSnapshot":
        return cls(count=0, minimum=0.0, maximum=0.0, mean=0.0,
                   p50=0.0, p95=0.0, p99=0.0, total=0.0)


def _percentile(ordered: list[float], fraction: float) -> float:
    """Nearest-rank percentile over a pre-sorted list."""
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1,
                      round(fraction * (len(ordered) - 1))))
    return ordered[rank]


class Histogram:
    """Latency histogram over a sliding reservoir of observations."""

    def __init__(self, name: str, *, reservoir: int = 4096,
                 labels: Mapping[str, str] | None = None):
        self.name = name
        self.labels = dict(labels or {})
        self.reservoir = reservoir
        self._observations: list[float] = []
        self._count = 0
        self._total = 0.0
        self._minimum = float("inf")
        self._maximum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._total += value
            self._minimum = min(self._minimum, value)
            self._maximum = max(self._maximum, value)
            self._observations.append(value)
            if len(self._observations) > self.reservoir:
                # drop the oldest half; recent traffic dominates tails
                del self._observations[:self.reservoir // 2]

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    # -- federation (mergeable reservoir export) -----------------------------

    def export_state(self, tail: int) -> tuple[int, float, float, float,
                                               list[float]]:
        """A consistent ``(count, total, min, max, tail)`` snapshot for
        delta export: ``tail`` is a copy of the newest observations
        still in the reservoir (at most ``tail`` of them). The exporter
        subtracts its last-seen count/total to ship exact deltas and
        the sampled tail for percentile merging."""
        with self._lock:
            observations = (self._observations[-tail:] if tail > 0 else [])
            minimum = self._minimum if self._count else 0.0
            return (self._count, self._total, minimum, self._maximum,
                    list(observations))

    def merge(self, *, count: int, total: float, minimum: float,
              maximum: float, observations: list[float]) -> None:
        """Fold another histogram's exported delta into this one.

        Count and sum merge exactly; ``observations`` is the exporter's
        reservoir tail, so merged percentiles are approximate in
        exactly the way one registry's own reservoir already is."""
        if count <= 0:
            return
        with self._lock:
            self._count += count
            self._total += total
            self._minimum = min(self._minimum, minimum)
            self._maximum = max(self._maximum, maximum)
            self._observations.extend(observations)
            if len(self._observations) > self.reservoir:
                del self._observations[:self.reservoir // 2]

    def snapshot(self) -> HistogramSnapshot:
        with self._lock:
            if self._count == 0:
                return HistogramSnapshot.empty()
            ordered = sorted(self._observations)
            return HistogramSnapshot(
                count=self._count,
                minimum=self._minimum,
                maximum=self._maximum,
                mean=self._total / self._count,
                p50=_percentile(ordered, 0.50),
                p95=_percentile(ordered, 0.95),
                p99=_percentile(ordered, 0.99),
                total=self._total,
            )


@dataclass(frozen=True)
class IndexStats:
    """The shared shape every index structure's ``stats()`` returns.

    ``entries`` is the structure's natural cardinality (documents for a
    full-text index, tuples for the vertical store, edges for a group
    replica); ``bytes_estimate`` its approximate in-memory footprint;
    ``detail`` whatever extra counts the structure keeps (term count,
    attribute count, net input bytes). The observability layer registers
    these uniformly as ``index.entries``/``index.bytes`` gauges.
    """

    name: str
    entries: int
    bytes_estimate: int
    detail: Mapping[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        """Flat dict form (shared fields plus the structure's detail)."""
        out: dict[str, object] = {"name": self.name,
                                  "entries": self.entries,
                                  "bytes_estimate": self.bytes_estimate}
        out.update(self.detail)
        return out


# -- Prometheus exposition ---------------------------------------------------

def _prom_name(name: str) -> str:
    """A metric name sanitized for the exposition format."""
    out = []
    for index, ch in enumerate(name):
        if ch.isalnum() and (index > 0 or not ch.isdigit()):
            out.append(ch)
        elif ch == ":":
            out.append(ch)
        else:
            out.append("_")
    return "".join(out)


def _prom_escape(value: str) -> str:
    return (value.replace("\\", r"\\")
                 .replace("\n", r"\n")
                 .replace('"', r'\"'))


def _prom_labels(labels: LabelKey, extra: tuple[tuple[str, str], ...] = ()
                 ) -> str:
    pairs = tuple(labels) + tuple(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{_prom_name(k)}="{_prom_escape(v)}"'
                     for k, v in pairs)
    return f"{{{inner}}}"


class MetricsRegistry:
    """Named counters, gauges and histograms, created on first use.

    One process-global instance (``repro.obs.global_metrics()``) is the
    telemetry spine; the service keeps a private one per instance for
    its legacy per-service report.
    """

    def __init__(self) -> None:
        self._counters: dict[tuple[str, LabelKey], Counter] = {}
        self._gauges: dict[tuple[str, LabelKey], Gauge] = {}
        self._histograms: dict[tuple[str, LabelKey], Histogram] = {}
        self._lock = threading.Lock()

    # -- creation ------------------------------------------------------------

    def counter(self, name: str,
                labels: Mapping[str, str] | None = None) -> Counter:
        key = (name, _label_key(labels))
        with self._lock:
            counter = self._counters.get(key)
            if counter is None:
                counter = self._counters[key] = Counter(name, labels)
            return counter

    def gauge(self, name: str,
              labels: Mapping[str, str] | None = None) -> Gauge:
        key = (name, _label_key(labels))
        with self._lock:
            gauge = self._gauges.get(key)
            if gauge is None:
                gauge = self._gauges[key] = Gauge(name, labels)
            return gauge

    def histogram(self, name: str,
                  labels: Mapping[str, str] | None = None) -> Histogram:
        key = (name, _label_key(labels))
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = Histogram(name,
                                                              labels=labels)
            return histogram

    def register_gauge_callback(self, name: str, fn: Callable, *,
                                owner: object | None = None,
                                labels: Mapping[str, str] | None = None
                                ) -> Gauge:
        """A gauge computed at snapshot time by ``fn``.

        With ``owner`` given, the gauge holds it weakly and calls
        ``fn(owner)``; once the owner is collected the series drops out
        of snapshots (re-registration under the same name + labels
        replaces the callback — last writer wins, so a fresh dataspace
        takes over its predecessor's series).
        """
        gauge = self.gauge(name, labels)
        gauge._callback = fn
        gauge._owner_ref = weakref.ref(owner) if owner is not None else None
        return gauge

    # -- shorthands ----------------------------------------------------------

    def increment(self, name: str, amount: int = 1,
                  labels: Mapping[str, str] | None = None) -> None:
        """Shorthand: bump a named counter."""
        self.counter(name, labels).increment(amount)

    def observe(self, name: str, value: float,
                labels: Mapping[str, str] | None = None) -> None:
        """Shorthand: record one observation into a named histogram."""
        self.histogram(name, labels).observe(value)

    def set_gauge(self, name: str, value: float,
                  labels: Mapping[str, str] | None = None) -> None:
        """Shorthand: set a named gauge."""
        self.gauge(name, labels).set(value)

    # -- snapshots -----------------------------------------------------------

    def _collect(self):
        with self._lock:
            counters = list(self._counters.items())
            gauges = [(key, gauge) for key, gauge in self._gauges.items()
                      if not gauge.dead]
            histograms = list(self._histograms.items())
        return counters, gauges, histograms

    def series(self):
        """Every live series as ``(kind, name, labels, metric)`` tuples
        (labels in normalized :data:`LabelKey` form) — the iteration
        surface the federation exporter walks."""
        counters, gauges, histograms = self._collect()
        out = []
        for (name, labels), metric in counters:
            out.append(("counter", name, labels, metric))
        for (name, labels), metric in gauges:
            out.append(("gauge", name, labels, metric))
        for (name, labels), metric in histograms:
            out.append(("histogram", name, labels, metric))
        return out

    def snapshot(self) -> dict[str, object]:
        """Every metric's current value, flat: counters as ints, gauges
        as floats, histograms as :class:`HistogramSnapshot`. Labeled
        series key as ``name{key="value"}``."""
        counters, gauges, histograms = self._collect()
        report: dict[str, object] = {}
        for (name, labels), counter in counters:
            report[_series_name(name, labels)] = counter.value
        for (name, labels), gauge in gauges:
            report[_series_name(name, labels)] = gauge.value
        for (name, labels), histogram in histograms:
            report[_series_name(name, labels)] = histogram.snapshot()
        return report

    def snapshot_json(self) -> dict[str, object]:
        """The snapshot as a JSON-serializable tree: one entry per
        series with its kind, labels and value(s)."""
        counters, gauges, histograms = self._collect()
        series: list[dict[str, object]] = []
        for (name, labels), counter in counters:
            series.append({"name": name, "kind": "counter",
                           "labels": dict(labels),
                           "value": counter.value})
        for (name, labels), gauge in gauges:
            series.append({"name": name, "kind": "gauge",
                           "labels": dict(labels), "value": gauge.value})
        for (name, labels), histogram in histograms:
            snap = histogram.snapshot()
            series.append({
                "name": name, "kind": "histogram", "labels": dict(labels),
                "value": {
                    "count": snap.count, "sum": snap.total,
                    "min": snap.minimum, "max": snap.maximum,
                    "mean": snap.mean, "p50": snap.p50,
                    "p95": snap.p95, "p99": snap.p99,
                },
            })
        series.sort(key=lambda s: (s["name"], sorted(s["labels"].items())))
        return {"series": series}

    def render_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot_json(), indent=indent,
                          sort_keys=True)

    # -- rendering -----------------------------------------------------------

    def render(self) -> str:
        """A human-readable dump (for the CLI's serve report)."""
        lines = []
        for name, value in sorted(self.snapshot().items()):
            if isinstance(value, HistogramSnapshot):
                lines.append(
                    f"{name}: n={value.count} mean={value.mean * 1000:.2f}ms "
                    f"p50={value.p50 * 1000:.2f}ms "
                    f"p95={value.p95 * 1000:.2f}ms "
                    f"p99={value.p99 * 1000:.2f}ms"
                )
            elif isinstance(value, float):
                lines.append(f"{name}: {value:g}")
            else:
                lines.append(f"{name}: {value}")
        return "\n".join(lines)

    def render_prometheus(self, *, prefix: str = "repro_") -> str:
        """The Prometheus text exposition format.

        Dotted names become underscored (``query.latency_seconds`` →
        ``repro_query_latency_seconds``); histograms render as
        summaries (quantile series plus ``_count``/``_sum``). Every
        sample line is ``name{labels} value`` with escaped label
        values, so any exposition-format scraper parses it.
        """
        counters, gauges, histograms = self._collect()
        lines: list[str] = []
        by_name: dict[str, list] = {}
        for (name, labels), metric in counters:
            by_name.setdefault(name, []).append(("counter", labels, metric))
        for (name, labels), metric in gauges:
            by_name.setdefault(name, []).append(("gauge", labels, metric))
        for (name, labels), metric in histograms:
            by_name.setdefault(name, []).append(("summary", labels, metric))
        for name in sorted(by_name):
            series = by_name[name]
            kind = series[0][0]
            prom = prefix + _prom_name(name)
            lines.append(f"# TYPE {prom} {kind}")
            for _, labels, metric in sorted(series, key=lambda s: s[1]):
                if kind == "summary":
                    snap = metric.snapshot()
                    for quantile, value in (("0.5", snap.p50),
                                            ("0.95", snap.p95),
                                            ("0.99", snap.p99)):
                        label_text = _prom_labels(
                            labels, (("quantile", quantile),)
                        )
                        lines.append(f"{prom}{label_text} {value:.9g}")
                    label_text = _prom_labels(labels)
                    lines.append(f"{prom}_count{label_text} {snap.count}")
                    lines.append(f"{prom}_sum{label_text} {snap.total:.9g}")
                else:
                    label_text = _prom_labels(labels)
                    value = metric.value
                    if isinstance(value, float):
                        lines.append(f"{prom}{label_text} {value:.9g}")
                    else:
                        lines.append(f"{prom}{label_text} {value}")
        return "\n".join(lines) + ("\n" if lines else "")
