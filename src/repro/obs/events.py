"""The structured event log: what happened, as JSON-ready records.

Metrics answer "how much"; events answer "what, exactly, and when".
Every subsystem emits :class:`Event` records — a severity, the emitting
subsystem, a dotted event name and free-form fields — into one
process-global :class:`EventLog` (``repro.obs.global_events()``), which
keeps a bounded ring buffer (old events evict silently) and optionally
forwards each accepted event to a sink callable (a file writer, a test
collector, a real log shipper).

Emission is cheap and thread-safe: a severity check, an optional
deterministic sampling check, one lock-guarded deque append. Sampling
is per event *name* (``sampling={"query.executed": 100}`` keeps every
100th), counter-based rather than random so runs replay exactly.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping

#: Severities, ordered. Kept as plain ints for cheap comparison.
DEBUG, INFO, WARNING, ERROR = 10, 20, 30, 40

_SEVERITY_NAMES = {DEBUG: "debug", INFO: "info",
                   WARNING: "warning", ERROR: "error"}
_SEVERITY_VALUES = {name: value for value, name in _SEVERITY_NAMES.items()}


def severity_name(severity: int) -> str:
    return _SEVERITY_NAMES.get(severity, str(severity))


def severity_value(name: str | int) -> int:
    if isinstance(name, int):
        return name
    return _SEVERITY_VALUES[name.lower()]


@dataclass(frozen=True)
class Event:
    """One structured occurrence."""

    timestamp: float
    severity: int
    subsystem: str
    name: str
    message: str
    fields: Mapping[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        return {
            "ts": round(self.timestamp, 6),
            "severity": severity_name(self.severity),
            "subsystem": self.subsystem,
            "event": self.name,
            "message": self.message,
            **{k: v for k, v in self.fields.items()},
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, default=str)


Sink = Callable[[Event], None]


class EventLog:
    """A bounded, thread-safe ring buffer of structured events."""

    def __init__(self, *, capacity: int = 1024,
                 min_severity: int = INFO,
                 sink: Sink | None = None,
                 sampling: Mapping[str, int] | None = None,
                 clock: Callable[[], float] = time.time):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.min_severity = min_severity
        self.sink = sink
        #: event name -> keep one in N (deterministic, counter-based)
        self.sampling = dict(sampling or {})
        self._clock = clock
        self._ring: deque[Event] = deque(maxlen=capacity)
        self._seen: dict[str, int] = {}
        self._dropped = 0
        self._emitted = 0
        self._lock = threading.Lock()

    # -- emission ------------------------------------------------------------

    def emit(self, severity: int, subsystem: str, name: str,
             message: str = "", **fields: object) -> Event | None:
        """Record one event; returns it, or None when filtered out."""
        if severity < self.min_severity:
            return None
        rate = self.sampling.get(name)
        with self._lock:
            if rate is not None and rate > 1:
                seen = self._seen.get(name, 0)
                self._seen[name] = seen + 1
                if seen % rate != 0:
                    self._dropped += 1
                    return None
            event = Event(timestamp=self._clock(), severity=severity,
                          subsystem=subsystem, name=name, message=message,
                          fields=dict(fields))
            self._ring.append(event)
            self._emitted += 1
            sink = self.sink
        if sink is not None:
            try:
                sink(event)
            except Exception:
                pass  # a broken sink must never break the caller
        return event

    def debug(self, subsystem: str, name: str, message: str = "",
              **fields: object) -> Event | None:
        return self.emit(DEBUG, subsystem, name, message, **fields)

    def info(self, subsystem: str, name: str, message: str = "",
             **fields: object) -> Event | None:
        return self.emit(INFO, subsystem, name, message, **fields)

    def warning(self, subsystem: str, name: str, message: str = "",
                **fields: object) -> Event | None:
        return self.emit(WARNING, subsystem, name, message, **fields)

    def error(self, subsystem: str, name: str, message: str = "",
              **fields: object) -> Event | None:
        return self.emit(ERROR, subsystem, name, message, **fields)

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    @property
    def emitted(self) -> int:
        """Events accepted into the ring over the log's lifetime."""
        with self._lock:
            return self._emitted

    @property
    def dropped_by_sampling(self) -> int:
        with self._lock:
            return self._dropped

    def snapshot(self, *, subsystem: str | None = None,
                 min_severity: int | None = None,
                 limit: int | None = None) -> list[Event]:
        """The buffered events, oldest first, optionally filtered."""
        with self._lock:
            events = list(self._ring)
        if subsystem is not None:
            events = [e for e in events if e.subsystem == subsystem]
        if min_severity is not None:
            events = [e for e in events if e.severity >= min_severity]
        if limit is not None:
            events = events[-limit:]
        return events

    def __iter__(self) -> Iterator[Event]:
        return iter(self.snapshot())

    def render_json_lines(self, **filters) -> str:
        """The buffered events as newline-delimited JSON."""
        return "\n".join(e.to_json() for e in self.snapshot(**filters))

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
