"""``repro.obs`` — unified telemetry for the whole PDSMS.

One process-global spine with three organs:

* :func:`global_metrics` — the :class:`MetricsRegistry` every subsystem
  records into, under one dotted naming convention (``query.*``,
  ``sync.*``, ``index.*``, ``resilience.*``, ``service.*``); rendered
  as Prometheus exposition text, JSON, or a human table;
* :func:`global_events` — the structured :class:`EventLog` (ring
  buffer, severities, optional sink, deterministic sampling);
* :func:`global_slowlog` — the :class:`SlowQueryLog`, automatically
  capturing the EXPLAIN ANALYZE span tree of any query over the
  configured threshold.

The module-level helpers (:func:`increment`, :func:`observe`,
:func:`set_gauge`, :func:`gauge_callback`, :func:`emit_event`) are the
instrumentation points the subsystems call; each is a no-op when
telemetry is disabled (:func:`configure` ``enabled=False``, or the
``REPRO_OBS_DISABLED`` environment variable), and
``benchmarks/bench_obs_overhead.py`` pins the enabled-vs-disabled cost
of the hot query path under 5%.

:func:`reset` swaps in fresh registries — tests use it for isolation;
production code never needs it.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Callable, Mapping

from .events import (
    DEBUG,
    ERROR,
    INFO,
    WARNING,
    Event,
    EventLog,
    severity_name,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    IndexStats,
    MetricsRegistry,
)
from .slowlog import SlowQuery, SlowQueryLog, in_recapture

__all__ = [
    "DEBUG", "ERROR", "INFO", "WARNING",
    "Counter", "Event", "EventLog", "Gauge", "Histogram",
    "HistogramSnapshot", "IndexStats", "MetricsRegistry", "ObsConfig",
    "SlowQuery", "SlowQueryLog",
    "configure", "emit_event", "enabled", "gauge_callback",
    "global_events", "global_metrics", "global_slowlog", "in_recapture",
    "increment", "observe", "reset", "set_gauge", "severity_name",
]


def _env_float(name: str) -> float | None:
    raw = os.environ.get(name)
    if raw is None:
        return None
    try:
        return float(raw)
    except ValueError:
        return None


@dataclass
class ObsConfig:
    """Telemetry settings, applied via :func:`configure`."""

    #: master switch: False turns every helper into a no-op
    enabled: bool = True
    #: queries at/above this wall time land in the slow-query log;
    #: None disables slow-query capture
    slow_query_seconds: float | None = 1.0
    #: recapture untraced slow queries by re-executing under a trace
    slow_query_recapture: bool = True
    #: at most one recapture re-execution per this many seconds
    slow_query_recapture_interval: float = 10.0
    slow_query_capacity: int = 64
    event_capacity: int = 1024
    event_min_severity: int = INFO


_lock = threading.Lock()
_config = ObsConfig()
if os.environ.get("REPRO_OBS_DISABLED", "") not in ("", "0"):
    _config.enabled = False
_env_threshold = _env_float("REPRO_SLOW_QUERY_SECONDS")
if _env_threshold is not None:
    _config.slow_query_seconds = (_env_threshold
                                  if _env_threshold > 0 else None)

_metrics = MetricsRegistry()
_events = EventLog(capacity=_config.event_capacity,
                   min_severity=_config.event_min_severity)
_slowlog = SlowQueryLog(
    threshold_seconds=_config.slow_query_seconds,
    capacity=_config.slow_query_capacity,
    recapture=_config.slow_query_recapture,
    recapture_interval_seconds=_config.slow_query_recapture_interval,
)


# -- access ------------------------------------------------------------------

def config() -> ObsConfig:
    return _config


def enabled() -> bool:
    """Is telemetry recording at all?"""
    return _config.enabled


def global_metrics() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _metrics


def global_events() -> EventLog:
    """The process-global structured event log."""
    return _events


def global_slowlog() -> SlowQueryLog:
    """The process-global slow-query log."""
    return _slowlog


def configure(**changes) -> ObsConfig:
    """Update telemetry settings in place.

    Accepts any :class:`ObsConfig` field; slow-query settings propagate
    to the live :class:`SlowQueryLog`, event settings to the live
    :class:`EventLog` (capacity changes take effect on :func:`reset`).
    """
    global _config
    with _lock:
        for key, value in changes.items():
            if not hasattr(_config, key):
                raise TypeError(f"unknown telemetry setting {key!r}")
            setattr(_config, key, value)
        _slowlog.threshold_seconds = _config.slow_query_seconds
        _slowlog.recapture = _config.slow_query_recapture
        _slowlog.recapture_interval_seconds = (
            _config.slow_query_recapture_interval
        )
        _events.min_severity = _config.event_min_severity
    return _config


def reset(**changes) -> None:
    """Fresh registries (and optionally new settings) — test isolation."""
    global _metrics, _events, _slowlog
    with _lock:
        for key, value in changes.items():
            if not hasattr(_config, key):
                raise TypeError(f"unknown telemetry setting {key!r}")
            setattr(_config, key, value)
        _metrics = MetricsRegistry()
        _events = EventLog(capacity=_config.event_capacity,
                           min_severity=_config.event_min_severity)
        _slowlog = SlowQueryLog(
            threshold_seconds=_config.slow_query_seconds,
            capacity=_config.slow_query_capacity,
            recapture=_config.slow_query_recapture,
            recapture_interval_seconds=(
                _config.slow_query_recapture_interval
            ),
        )


# -- instrumentation points (no-ops when disabled) ---------------------------

def increment(name: str, amount: int = 1,
              labels: Mapping[str, str] | None = None) -> None:
    if _config.enabled:
        _metrics.increment(name, amount, labels)


def observe(name: str, value: float,
            labels: Mapping[str, str] | None = None) -> None:
    if _config.enabled:
        _metrics.observe(name, value, labels)


def set_gauge(name: str, value: float,
              labels: Mapping[str, str] | None = None) -> None:
    if _config.enabled:
        _metrics.set_gauge(name, value, labels)


def gauge_callback(name: str, fn: Callable, *, owner: object | None = None,
                   labels: Mapping[str, str] | None = None) -> None:
    """Register a snapshot-time gauge (see
    :meth:`MetricsRegistry.register_gauge_callback`). Registered even
    while disabled — evaluation happens only on snapshot, which is
    never on a hot path."""
    _metrics.register_gauge_callback(name, fn, owner=owner, labels=labels)


def emit_event(severity: int, subsystem: str, name: str,
               message: str = "", **fields: object) -> None:
    if _config.enabled:
        _events.emit(severity, subsystem, name, message, **fields)


def record_slow_query(query: str, elapsed_seconds: float, *, trace=None,
                      plan_text: str = "", processor=None,
                      degraded: bool = False) -> None:
    """The executor's post-execution hook: counts the query and, when
    it crossed the threshold, captures it into the slow-query log and
    emits a ``query.slow`` warning event."""
    if not _config.enabled:
        return
    if not _slowlog.is_slow(elapsed_seconds):
        return
    entry = _slowlog.record(query, elapsed_seconds, trace=trace,
                            plan_text=plan_text, processor=processor,
                            degraded=degraded)
    if entry is None:
        return  # re-entrant recapture; never count it twice
    _metrics.increment("query.slow")
    _events.emit(WARNING, "query", "query.slow",
                 f"query took {elapsed_seconds * 1000:.1f} ms",
                 query=query,
                 elapsed_ms=round(elapsed_seconds * 1000, 3),
                 threshold_ms=round(
                     (_slowlog.threshold_seconds or 0.0) * 1000, 3),
                 recaptured=entry.recaptured)
