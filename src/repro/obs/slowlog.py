"""The slow-query log: automatic EXPLAIN ANALYZE for outliers.

Any query whose wall time crosses the configured threshold lands here
with its full span tree, so "why was that slow" is answerable after the
fact without re-running anything by hand. Two capture paths:

* the execution was already traced (EXPLAIN ANALYZE, ``serve(...,
  trace_queries=True)``) — its span forest is rendered directly, free;
* the execution was untraced (the common fast path) — the log
  **recaptures** by re-executing the query once under a fresh trace,
  the way ``auto_explain`` would have instrumented it up front, but
  paying the instrumentation cost only for queries that already proved
  slow. Recaptures are rate-limited (at most one per
  ``recapture_interval_seconds``) so a storm of slow queries cannot
  double the system's load, and re-entrancy is guarded so a recapture
  can never recapture itself.

The log is a bounded ring: old entries evict as new slow queries
arrive.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Mapping


@dataclass(frozen=True)
class SlowQuery:
    """One captured slow execution."""

    query: str
    elapsed_seconds: float
    threshold_seconds: float
    captured_at: float
    #: the rendered EXPLAIN ANALYZE plan tree ("" when capture failed)
    span_tree: str = ""
    plan_text: str = ""
    counters: Mapping[str, int] = field(default_factory=dict)
    #: True when the tree came from a rate-limited re-execution rather
    #: than the original (traced) run
    recaptured: bool = False
    degraded: bool = False

    def to_dict(self) -> dict[str, object]:
        return {
            "query": self.query,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "threshold_seconds": self.threshold_seconds,
            "recaptured": self.recaptured,
            "degraded": self.degraded,
            "span_tree": self.span_tree,
        }

    def render(self) -> str:
        lines = [f"slow query ({self.elapsed_seconds * 1000:.1f} ms, "
                 f"threshold {self.threshold_seconds * 1000:.1f} ms"
                 + (", recaptured" if self.recaptured else "")
                 + "): " + self.query]
        if self.span_tree:
            lines.extend("  " + line
                         for line in self.span_tree.splitlines())
        elif self.plan_text:
            lines.extend("  " + line
                         for line in self.plan_text.splitlines())
        return "\n".join(lines)


_recapturing = threading.local()


def in_recapture() -> bool:
    """True while this thread is re-executing a slow query under a
    trace — instrumentation skips recording so a recapture never
    inflates the very metrics that flagged it."""
    return getattr(_recapturing, "active", False)


class SlowQueryLog:
    """A bounded ring of :class:`SlowQuery` captures."""

    def __init__(self, *, threshold_seconds: float | None = 1.0,
                 capacity: int = 64,
                 recapture: bool = True,
                 recapture_interval_seconds: float = 10.0,
                 clock=time.monotonic):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        #: queries at or above this wall time are captured; None
        #: disables the log entirely
        self.threshold_seconds = threshold_seconds
        self.capacity = capacity
        self.recapture = recapture
        self.recapture_interval_seconds = recapture_interval_seconds
        self._clock = clock
        self._ring: deque[SlowQuery] = deque(maxlen=capacity)
        self._last_recapture: float | None = None
        self._captured = 0
        self._lock = threading.Lock()

    # -- capture -------------------------------------------------------------

    def is_slow(self, elapsed_seconds: float) -> bool:
        threshold = self.threshold_seconds
        return threshold is not None and elapsed_seconds >= threshold

    def record(self, query: str, elapsed_seconds: float, *,
               trace=None, plan_text: str = "", processor=None,
               degraded: bool = False) -> SlowQuery | None:
        """Capture one execution if it crossed the threshold.

        ``trace`` is the execution's own
        :class:`~repro.trace.TraceCollector` when it ran traced;
        otherwise ``processor`` (a
        :class:`~repro.query.executor.QueryProcessor`) enables the
        rate-limited recapture path. Returns the entry, or None when
        the query was fast, the log is disabled, or this thread is
        itself inside a recapture.
        """
        if not self.is_slow(elapsed_seconds):
            return None
        if getattr(_recapturing, "active", False):
            return None  # a recapture must never capture itself
        threshold = self.threshold_seconds
        span_tree = ""
        counters: dict[str, int] = {}
        recaptured = False
        if trace is not None:
            span_tree = self._render_trace(trace)
            counters = dict(trace.counters)
        elif processor is not None and self.recapture:
            captured = self._try_recapture(query, processor)
            if captured is not None:
                span_tree, counters = captured
                recaptured = True
        entry = SlowQuery(
            query=query, elapsed_seconds=elapsed_seconds,
            threshold_seconds=threshold, captured_at=self._clock(),
            span_tree=span_tree, plan_text=plan_text,
            counters=counters, recaptured=recaptured, degraded=degraded,
        )
        with self._lock:
            self._ring.append(entry)
            self._captured += 1
        return entry

    def _try_recapture(self, query: str,
                       processor) -> tuple[str, dict[str, int]] | None:
        """Re-execute under a trace, at most once per interval."""
        now = self._clock()
        with self._lock:
            last = self._last_recapture
            if (last is not None
                    and now - last < self.recapture_interval_seconds):
                return None
            self._last_recapture = now
        _recapturing.active = True
        try:
            report = processor.explain_analyze(query)
        except Exception:
            return None  # the slow entry still records, tree-less
        finally:
            _recapturing.active = False
        return (self._render_trace(report.trace),
                dict(report.trace.counters))

    @staticmethod
    def _render_trace(trace) -> str:
        from ..trace.render import render_spans
        return render_spans(trace.roots)

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    @property
    def captured(self) -> int:
        """Slow queries seen over the log's lifetime (evicted included)."""
        with self._lock:
            return self._captured

    def entries(self) -> list[SlowQuery]:
        """The buffered captures, oldest first."""
        with self._lock:
            return list(self._ring)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
