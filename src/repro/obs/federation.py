"""Metrics federation: shipping one registry's deltas to another.

The sharded service runs one :class:`~repro.obs.MetricsRegistry` per
worker *process*, so the supervisor's process-global registry — the one
``repro stats`` and ``serve().stats()`` read — would be blind to query
execution without a transport. This module is that transport's payload
layer, deliberately wire-agnostic (the supervise control pipe carries
the dicts as JSON frame fields, but nothing here knows about frames):

* :class:`RegistryExporter` (worker side) walks the registry and emits
  a **delta snapshot**: counters as exact increments since the last
  export, gauges as last-value (shipped only when changed), histograms
  as a mergeable reservoir export — exact ``count``/``sum`` deltas plus
  the newest reservoir tail for percentile merging. An export with
  nothing changed is ``None``, so idle workers ship nothing.
* :func:`merge_export` (supervisor side) folds one export into a
  registry under extra labels (``{shard="3"}``), so every worker series
  appears in the fleet snapshot as its own labeled time series.
* :class:`ForwardingEventBuffer` rides along: an event-log sink that
  buffers records at/above a severity for the next export, so worker
  warnings surface in the supervisor's event log instead of dying with
  the process.

Because exports are *deltas against the exporter's own lifetime*, a
respawned worker (fresh registry, fresh exporter) restarts from zero
and can never re-ship increments its dead incarnation already shipped —
merged counters are never double-counted across a SIGKILL.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Mapping

from .events import WARNING, Event, EventLog
from .metrics import MetricsRegistry

#: Newest reservoir observations shipped per histogram per export; the
#: percentile sample, not the count (counts merge exactly regardless).
EXPORT_TAIL = 256


class RegistryExporter:
    """Computes periodic delta snapshots of one registry.

    One exporter per process lifetime: it remembers the last exported
    counter values and histogram ``(count, total)`` pairs, so each
    :meth:`export` ships exactly the increments since the previous one.
    Thread-safe — the worker's reply path may export from either of its
    threads.
    """

    def __init__(self, registry: MetricsRegistry, *,
                 callback_gauge_interval: float = 2.0):
        self.registry = registry
        #: Callback gauges (index sizes and the like) recompute their
        #: value on every read — a full index walk costs milliseconds,
        #: which would dwarf the query itself on a per-reply export. The
        #: underlying figures change on sync, not per query, so the
        #: exporter re-reads them at most this often (0 = every export).
        self.callback_gauge_interval = callback_gauge_interval
        self._lock = threading.Lock()
        self._counters: dict[tuple, int] = {}
        self._gauges: dict[tuple, float] = {}
        self._histograms: dict[tuple, tuple[int, float]] = {}
        self._callback_gauges_read = float("-inf")

    def export(self) -> dict | None:
        """The delta snapshot since the last call, or ``None`` when no
        series moved. Shape (all JSON-ready)::

            {"c": [[name, [[k, v], ...], delta], ...],
             "g": [[name, labels, value], ...],
             "h": [[name, labels, {"n": count_delta, "s": sum_delta,
                                   "mn": min, "mx": max,
                                   "o": [obs, ...]}], ...]}
        """
        import time

        counters: list[list] = []
        gauges: list[list] = []
        histograms: list[list] = []
        with self._lock:
            now = time.monotonic()
            read_callbacks = (now - self._callback_gauges_read
                              >= self.callback_gauge_interval)
            if read_callbacks:
                self._callback_gauges_read = now
            for kind, name, labels, metric in self.registry.series():
                key = (name, labels)
                if kind == "counter":
                    value = metric.value
                    delta = value - self._counters.get(key, 0)
                    if delta:
                        self._counters[key] = value
                        counters.append([name, list(labels), delta])
                elif kind == "gauge":
                    if metric.has_callback and not read_callbacks:
                        continue
                    value = float(metric.value)
                    if value != self._gauges.get(key):
                        self._gauges[key] = value
                        gauges.append([name, list(labels), value])
                else:
                    count, total, mn, mx, tail = metric.export_state(
                        EXPORT_TAIL)
                    last_count, last_total = self._histograms.get(
                        key, (0, 0.0))
                    delta = count - last_count
                    if delta:
                        self._histograms[key] = (count, total)
                        histograms.append([name, list(labels), {
                            "n": delta, "s": total - last_total,
                            "mn": mn, "mx": mx,
                            "o": tail[-delta:] if delta < len(tail)
                            else tail,
                        }])
        if not (counters or gauges or histograms):
            return None
        out: dict = {}
        if counters:
            out["c"] = counters
        if gauges:
            out["g"] = gauges
        if histograms:
            out["h"] = histograms
        return out


def _labels_with(pairs, extra: Mapping[str, str]) -> dict[str, str]:
    labels = {str(k): str(v) for k, v in pairs}
    labels.update(extra)
    return labels


def merge_export(registry: MetricsRegistry, export: Mapping,
                 extra_labels: Mapping[str, str]) -> int:
    """Fold one :meth:`RegistryExporter.export` payload into
    ``registry``, adding ``extra_labels`` to every series (the
    supervisor passes ``{"shard": "N"}``). Returns the series count
    merged. Counter deltas add exactly; gauges overwrite (last-value
    semantics); histograms merge via
    :meth:`~repro.obs.metrics.Histogram.merge`."""
    merged = 0
    for name, labels, delta in export.get("c", ()):
        registry.counter(str(name), _labels_with(labels, extra_labels)
                         ).increment(int(delta))
        merged += 1
    for name, labels, value in export.get("g", ()):
        registry.gauge(str(name), _labels_with(labels, extra_labels)
                       ).set(float(value))
        merged += 1
    for name, labels, data in export.get("h", ()):
        registry.histogram(str(name), _labels_with(labels, extra_labels)
                           ).merge(
            count=int(data.get("n", 0)),
            total=float(data.get("s", 0.0)),
            minimum=float(data.get("mn", 0.0)),
            maximum=float(data.get("mx", 0.0)),
            observations=[float(x) for x in data.get("o", ())],
        )
        merged += 1
    return merged


class ForwardingEventBuffer:
    """An :class:`~repro.obs.EventLog` sink buffering records for
    forwarding: events at/above ``min_severity`` queue (bounded — the
    oldest drop first under pressure) until :meth:`drain` ships them.
    """

    def __init__(self, *, min_severity: int = WARNING,
                 capacity: int = 256):
        self.min_severity = min_severity
        self._pending: deque[Event] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def __call__(self, event: Event) -> None:
        if event.severity < self.min_severity:
            return
        with self._lock:
            self._pending.append(event)

    def attach(self, log: EventLog) -> None:
        """Install as ``log``'s sink (composing with any existing one —
        both get every accepted event)."""
        existing = log.sink
        if existing is None:
            log.sink = self
        else:
            def fanout(event: Event, _prior=existing, _self=self) -> None:
                _prior(event)
                _self(event)
            log.sink = fanout

    def drain(self) -> list[dict]:
        """The buffered events as JSON-ready dicts, oldest first."""
        with self._lock:
            pending, self._pending = list(self._pending), deque(
                maxlen=self._pending.maxlen)
        return [{"sev": e.severity, "sub": e.subsystem, "name": e.name,
                 "msg": e.message, "ts": e.timestamp,
                 "fields": dict(e.fields)} for e in pending]
