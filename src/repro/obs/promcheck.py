"""Line-by-line validation of Prometheus text exposition output.

A minimal, dependency-free parser for the subset of the exposition
format :meth:`~repro.obs.metrics.MetricsRegistry.render_prometheus`
emits: ``# TYPE``/``# HELP`` comments and sample lines of the shape
``name{label="value",...} float``. The CI ``obs`` job pipes
``repro stats --format prometheus`` through ``python -m
repro.obs.promcheck`` so a rendering regression (bad escaping, a
non-numeric value, an illegal metric name) fails the build instead of
silently breaking scrapers.
"""

from __future__ import annotations

import re
import sys

_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_LABEL = rf'{_NAME}="(?:[^"\\]|\\.)*"'
_SAMPLE = re.compile(
    rf"^(?P<name>{_NAME})"
    rf"(?:\{{(?P<labels>{_LABEL}(?:,{_LABEL})*)?\}})?"
    rf" (?P<value>\S+)$"
)
_COMMENT = re.compile(
    rf"^# (?:TYPE {_NAME} (?:counter|gauge|summary|histogram|untyped)"
    rf"|HELP {_NAME} .*)$"
)


def validate_line(line: str) -> str | None:
    """Validate one exposition line; returns an error message or None."""
    if not line.strip():
        return None
    if line.startswith("#"):
        if _COMMENT.match(line):
            return None
        return f"malformed comment: {line!r}"
    match = _SAMPLE.match(line)
    if match is None:
        return f"malformed sample: {line!r}"
    value = match.group("value")
    if value not in ("+Inf", "-Inf", "NaN"):
        try:
            float(value)
        except ValueError:
            return f"non-numeric value {value!r} in: {line!r}"
    return None


def validate(text: str) -> list[str]:
    """All validation errors in ``text`` (empty list = valid)."""
    errors = []
    for number, line in enumerate(text.splitlines(), start=1):
        error = validate_line(line)
        if error is not None:
            errors.append(f"line {number}: {error}")
    return errors


def parse_samples(text: str) -> list[tuple[str, dict[str, str], float]]:
    """Parse all sample lines into ``(name, labels, value)`` triples.

    Raises :class:`ValueError` on the first malformed line — the strict
    entry point tests use to assert every rendered line round-trips.
    """
    samples = []
    for number, line in enumerate(text.splitlines(), start=1):
        error = validate_line(line)
        if error is not None:
            raise ValueError(f"line {number}: {error}")
        if not line.strip() or line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        assert match is not None
        labels: dict[str, str] = {}
        if match.group("labels"):
            for pair in re.findall(_LABEL, match.group("labels")):
                key, _, raw = pair.partition("=")
                value = raw[1:-1]
                labels[key] = (value.replace(r"\"", '"')
                               .replace(r"\n", "\n")
                               .replace("\\\\", "\\"))
        raw_value = match.group("value")
        numeric = {"+Inf": float("inf"), "-Inf": float("-inf"),
                   "NaN": float("nan")}.get(raw_value)
        samples.append((match.group("name"), labels,
                        numeric if numeric is not None
                        else float(raw_value)))
    return samples


def main(argv: list[str] | None = None) -> int:
    """Validate exposition text from stdin (or a file argument).

    ``--require-label NAME`` (repeatable) additionally demands at least
    one sample carrying that label — how CI asserts the sharded stats
    output really federated ``{shard=...}`` series instead of silently
    rendering an unlabeled registry."""
    import argparse

    parser = argparse.ArgumentParser(prog="repro.obs.promcheck")
    parser.add_argument("path", nargs="?", default=None,
                        help="exposition text file (default: stdin)")
    parser.add_argument("--require-label", action="append", default=[],
                        metavar="NAME",
                        help="fail unless some sample carries this label")
    args = parser.parse_args(argv)
    if args.path:
        with open(args.path, encoding="utf-8") as handle:
            text = handle.read()
    else:
        text = sys.stdin.read()
    errors = validate(text)
    if errors:
        for error in errors:
            print(error, file=sys.stderr)
        return 1
    samples = parse_samples(text)
    for name in args.require_label:
        hits = sum(1 for _, labels, _ in samples if name in labels)
        if not hits:
            print(f"required label {name!r} appears in no sample",
                  file=sys.stderr)
            return 1
        print(f"label {name!r}: {hits} samples")
    print(f"ok: {len(samples)} samples, "
          f"{len(text.splitlines())} lines")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
