"""Resilience policies: bounded retries with backoff, circuit breakers.

Both are deliberately clock-injected: production uses ``time.monotonic``
and ``time.sleep``, tests pass a fake clock so breaker cool-downs and
backoff schedules are asserted without waiting. All jitter comes from a
seeded RNG owned by the caller, keeping chaos runs reproducible.
"""

from __future__ import annotations

import enum
import random
import threading
import time
from dataclasses import dataclass, field

from ..core.errors import SourceTimeout, TransientSourceError


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and full jitter.

    ``max_attempts`` counts the first try: 3 means one call plus at
    most two retries. Delay before retry *n* (1-based) is
    ``base * multiplier**(n-1)``, capped at ``max_backoff``, then
    jittered by up to ``jitter`` of itself (additive, from the seeded
    RNG) — the classic decorrelation that keeps a fleet of retriers
    from thundering in lockstep.
    """

    max_attempts: int = 3
    backoff_base: float = 0.02
    backoff_multiplier: float = 2.0
    backoff_max: float = 1.0
    jitter: float = 0.5
    #: per-call deadline (seconds of wall time); None disables the check
    call_deadline: float | None = None
    retry_on: tuple[type[BaseException], ...] = (
        TransientSourceError, SourceTimeout,
    )

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff durations must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")

    def is_retryable(self, error: BaseException) -> bool:
        return isinstance(error, self.retry_on)

    def delay(self, retry_number: int, rng: random.Random) -> float:
        """Backoff before the ``retry_number``-th retry (1-based)."""
        if retry_number < 1:
            raise ValueError("retry numbers are 1-based")
        raw = self.backoff_base * (
            self.backoff_multiplier ** (retry_number - 1)
        )
        raw = min(raw, self.backoff_max)
        if self.jitter:
            raw += raw * self.jitter * rng.random()
        return raw


class BreakerState(enum.Enum):
    CLOSED = "closed"          # normal operation
    OPEN = "open"              # failing fast, cooling down
    HALF_OPEN = "half_open"    # probing with a limited budget


@dataclass
class CircuitBreaker:
    """A per-source circuit breaker (closed → open → half-open).

    ``failure_threshold`` *consecutive* failures open the circuit;
    while open, :meth:`allow` returns False until ``cooldown_seconds``
    of (injected) clock have passed, after which the breaker half-opens
    and admits up to ``half_open_probes`` probe calls. A probe success
    closes the circuit; a probe failure re-opens it and restarts the
    cool-down.

    All transitions run under an internal lock: concurrent service
    threads (and the shard supervisor's monitor) race :meth:`allow`
    freely, and the half-open probe budget admits exactly
    ``half_open_probes`` callers no matter how many arrive at once —
    the check-then-increment on the probe slot would otherwise let a
    thundering herd through together.
    """

    failure_threshold: int = 5
    cooldown_seconds: float = 30.0
    half_open_probes: int = 1
    clock: "callable" = time.monotonic

    state: BreakerState = field(default=BreakerState.CLOSED, init=False)
    consecutive_failures: int = field(default=0, init=False)
    opened_at: float | None = field(default=None, init=False)
    #: lifetime transition counts, for health snapshots
    times_opened: int = field(default=0, init=False)
    _probes_in_flight: int = field(default=0, init=False)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  init=False, repr=False)

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")

    # -- admission ----------------------------------------------------------

    def allow(self) -> bool:
        """May the next call go through to the source?"""
        with self._lock:
            if self.state is BreakerState.CLOSED:
                return True
            if self.state is BreakerState.OPEN:
                assert self.opened_at is not None
                if self.clock() - self.opened_at < self.cooldown_seconds:
                    return False
                self.state = BreakerState.HALF_OPEN
                self._probes_in_flight = 0
            # HALF_OPEN: admit a bounded number of probes
            if self._probes_in_flight >= self.half_open_probes:
                return False
            self._probes_in_flight += 1
            return True

    @property
    def retry_after(self) -> float | None:
        """Seconds until the cool-down elapses (None unless open)."""
        with self._lock:
            if (self.state is not BreakerState.OPEN
                    or self.opened_at is None):
                return None
            return max(
                0.0,
                self.cooldown_seconds - (self.clock() - self.opened_at),
            )

    # -- outcomes -----------------------------------------------------------

    def record_success(self) -> None:
        with self._lock:
            if self.state is BreakerState.HALF_OPEN:
                self._probes_in_flight = 0
            self.state = BreakerState.CLOSED
            self.consecutive_failures = 0
            self.opened_at = None

    def record_failure(self) -> None:
        with self._lock:
            self.consecutive_failures += 1
            if self.state is BreakerState.HALF_OPEN:
                self._trip()
            elif (self.state is BreakerState.CLOSED
                    and self.consecutive_failures
                    >= self.failure_threshold):
                self._trip()

    def _trip(self) -> None:
        self.state = BreakerState.OPEN
        self.opened_at = self.clock()
        self.times_opened += 1
        self._probes_in_flight = 0
