"""Degradation reporting: what a partial answer is missing.

The dataspace vision's "pay-as-you-go" availability cuts both ways: a
query over flaky sources should *answer* from what is reachable, and it
should *say* what it could not reach. :class:`DegradationReport` is
that second half — attached to every
:class:`~repro.query.executor.QueryResult` (empty in the happy case)
and rendered by the CLI, ``explain_analyze`` and the service metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class SourceIncident:
    """One degraded data-source interaction during an execution."""

    authority: str
    operation: str
    error: str


@dataclass
class DegradationReport:
    """What one execution (query or sync pass) had to do without."""

    incidents: list[SourceIncident] = field(default_factory=list)
    #: views whose components could not be reached (skipped, not stale)
    views_unavailable: int = 0
    #: retries spent against sources during this execution
    retries_spent: int = 0

    @property
    def is_degraded(self) -> bool:
        return bool(self.incidents) or self.views_unavailable > 0

    @property
    def sources_skipped(self) -> list[str]:
        """Authorities that degraded at least once, sorted."""
        return sorted({i.authority for i in self.incidents})

    def record(self, authority: str, operation: str,
               error: BaseException | str, *,
               views_unavailable: int = 0) -> None:
        self.incidents.append(SourceIncident(
            authority=authority, operation=operation, error=str(error),
        ))
        self.views_unavailable += views_unavailable

    def merge(self, other: "DegradationReport") -> None:
        self.incidents.extend(other.incidents)
        self.views_unavailable += other.views_unavailable
        self.retries_spent += other.retries_spent

    def summary(self) -> str:
        """One line for CLI/log output."""
        if not self.is_degraded:
            return "complete (no sources skipped)"
        skipped = ",".join(self.sources_skipped) or "-"
        return (f"degraded: sources={skipped} "
                f"incidents={len(self.incidents)} "
                f"views_unavailable={self.views_unavailable} "
                f"retries={self.retries_spent}")

    def render(self) -> str:
        """Multi-line report: the summary plus each incident."""
        lines = [self.summary()]
        for incident in self.incidents:
            lines.append(f"  {incident.authority}.{incident.operation}: "
                         f"{incident.error}")
        return "\n".join(lines)
