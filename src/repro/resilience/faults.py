"""Deterministic fault injection for data sources.

A real personal dataspace reaches into filesystems, IMAP servers and
feeds that are routinely slow, flaky or offline. This module makes
those conditions *reproducible*: a :class:`FaultPlan` is a seedable
schedule of faults, and :class:`FaultyPluginWrapper` applies it to any
:class:`~repro.rvm.proxy.DataSourcePlugin` without the plugin knowing.
:class:`FaultyProvider` does the same for a single lazy component
provider, so query-time component forcing can fail too.

Two scheduling styles compose:

* **scripted** — ``plan.fail_calls(3, 4)`` injects a fault on exactly
  the 3rd and 4th data-source calls, and ``plan.outage(after=10)``
  takes the source down permanently from call 10 on; chaos tests use
  these for exact breaker-transition assertions;
* **probabilistic** — ``FaultPlan(seed=7, transient_rate=0.3)`` fails
  ~30% of calls, deterministically for a given seed (one private
  ``random.Random``), which is what the seeded chaos matrix runs.

Faults are exceptions from the real hierarchy
(:class:`~repro.core.errors.TransientSourceError`,
:class:`~repro.core.errors.SourceTimeout`,
:class:`~repro.core.errors.SourceUnavailable`), so the system under
test cannot tell injected faults from genuine ones. Latency spikes are
charged to the wrapper's simulated-latency account (visible through
``data_source_seconds``) rather than actually sleeping, keeping chaos
runs fast and deterministic.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Callable, TypeVar

from ..core.errors import (
    SourceTimeout,
    SourceUnavailable,
    TransientSourceError,
)
from ..core.identity import ViewId
from ..core.resource_view import ResourceView

T = TypeVar("T")


class FaultKind(enum.Enum):
    """What an injected fault does to the call it lands on."""

    TRANSIENT = "transient"   # TransientSourceError: retryable
    TIMEOUT = "timeout"       # SourceTimeout: retryable, deadline-shaped
    OUTAGE = "outage"         # SourceUnavailable: the source is down
    LATENCY = "latency"       # slow call: simulated seconds charged


@dataclass(frozen=True)
class Fault:
    """One injected fault occurrence."""

    kind: FaultKind
    call_number: int
    #: simulated extra seconds (LATENCY faults only)
    latency_seconds: float = 0.0


class FaultPlan:
    """A seedable, inspectable schedule of faults for one source.

    The plan counts *data-source calls* (across all operations of the
    wrapped plugin/provider) and decides per call whether to inject.
    Decision order: permanent outage, scripted calls, probabilistic
    draw. All draws come from one ``random.Random(seed)``, so a plan is
    fully determined by its constructor arguments plus the sequence of
    calls made against it.
    """

    def __init__(self, *, seed: int = 0,
                 transient_rate: float = 0.0,
                 timeout_rate: float = 0.0,
                 latency_rate: float = 0.0,
                 latency_seconds: float = 0.05):
        for name, rate in (("transient_rate", transient_rate),
                           ("timeout_rate", timeout_rate),
                           ("latency_rate", latency_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be within [0, 1]: {rate}")
        self.seed = seed
        self.transient_rate = transient_rate
        self.timeout_rate = timeout_rate
        self.latency_rate = latency_rate
        self.latency_seconds = latency_seconds
        self._rng = random.Random(seed)
        self._calls = 0
        self._scripted: dict[int, FaultKind] = {}
        self._outage_after: int | None = None
        self._recovery_at: int | None = None
        #: every fault injected so far, for test assertions
        self.injected: list[Fault] = []

    # -- scripting ----------------------------------------------------------

    def fail_calls(self, *call_numbers: int,
                   kind: FaultKind = FaultKind.TRANSIENT) -> "FaultPlan":
        """Inject ``kind`` on exactly these 1-based call numbers."""
        for number in call_numbers:
            if number < 1:
                raise ValueError("call numbers are 1-based")
            self._scripted[number] = kind
        return self

    def outage(self, *, after: int = 0,
               until: int | None = None) -> "FaultPlan":
        """Permanent outage: every call past ``after`` fails with
        :class:`SourceUnavailable` (until call ``until``, when given —
        a recovering source)."""
        self._outage_after = after
        self._recovery_at = until
        return self

    # -- the decision -------------------------------------------------------

    @property
    def calls(self) -> int:
        """Data-source calls decided so far."""
        return self._calls

    def next_fault(self) -> Fault | None:
        """Decide the fate of the next call; None means it goes through.

        Every path consumes exactly one draw from the plan's RNG, so
        scripted faults do not shift the probabilistic schedule.
        """
        self._calls += 1
        draw = self._rng.random()
        fault = self._decide(draw)
        if fault is not None:
            self.injected.append(fault)
        return fault

    def _decide(self, draw: float) -> Fault | None:
        number = self._calls
        if (self._outage_after is not None and number > self._outage_after
                and (self._recovery_at is None
                     or number < self._recovery_at)):
            return Fault(FaultKind.OUTAGE, number)
        scripted = self._scripted.get(number)
        if scripted is not None:
            latency = (self.latency_seconds
                       if scripted is FaultKind.LATENCY else 0.0)
            return Fault(scripted, number, latency_seconds=latency)
        if draw < self.transient_rate:
            return Fault(FaultKind.TRANSIENT, number)
        draw -= self.transient_rate
        if draw < self.timeout_rate:
            return Fault(FaultKind.TIMEOUT, number)
        draw -= self.timeout_rate
        if draw < self.latency_rate:
            return Fault(FaultKind.LATENCY, number,
                         latency_seconds=self.latency_seconds)
        return None

    def raise_or_charge(self, source: str) -> float:
        """Apply the next scheduled fault: raise for error faults,
        return simulated extra seconds for latency spikes (0.0 when the
        call goes through clean)."""
        fault = self.next_fault()
        if fault is None:
            return 0.0
        if fault.kind is FaultKind.TRANSIENT:
            raise TransientSourceError(
                f"injected transient fault on {source} "
                f"(call #{fault.call_number})"
            )
        if fault.kind is FaultKind.TIMEOUT:
            raise SourceTimeout(
                f"injected timeout on {source} (call #{fault.call_number})"
            )
        if fault.kind is FaultKind.OUTAGE:
            raise SourceUnavailable(
                f"injected outage on {source} (call #{fault.call_number})",
                authority=source,
            )
        return fault.latency_seconds


class FaultyPluginWrapper:
    """A :class:`DataSourcePlugin` that injects faults around another.

    Transparent when the plan injects nothing. Change subscription is a
    local registration (no source round-trip), so it is never faulted;
    everything that actually touches the source — ``root_views``,
    ``resolve``, ``poll_changes`` — consults the plan first. Latency
    spikes accumulate into this wrapper's simulated-seconds account, on
    top of whatever the inner plugin simulates itself.
    """

    def __init__(self, inner, plan: FaultPlan):
        self.inner = inner
        self.plan = plan
        self.authority = inner.authority
        self._injected_seconds = 0.0

    def _gate(self) -> None:
        self._injected_seconds += self.plan.raise_or_charge(self.authority)

    # -- DataSourcePlugin contract ------------------------------------------

    def root_views(self) -> list[ResourceView]:
        self._gate()
        return self.inner.root_views()

    def resolve(self, view_id: ViewId) -> ResourceView | None:
        self._gate()
        return self.inner.resolve(view_id)

    def subscribe_changes(self, callback: Callable[[ViewId], None]) -> bool:
        return self.inner.subscribe_changes(callback)

    def poll_changes(self) -> list[ViewId]:
        self._gate()
        return self.inner.poll_changes()

    def data_source_seconds(self) -> float:
        return self.inner.data_source_seconds() + self._injected_seconds


class FaultyProvider:
    """Wrap a lazy component provider with a fault plan.

    ``LazyValue(FaultyProvider(plan, provider, source="imap"))`` makes
    query-time component forcing fail on the plan's schedule — the
    other half of the paper's lazy-computation surface (a component may
    be computed long after its view was synchronized).
    """

    __slots__ = ("plan", "provider", "source", "calls")

    def __init__(self, plan: FaultPlan, provider: Callable[[], T],
                 *, source: str = "provider"):
        self.plan = plan
        self.provider = provider
        self.source = source
        self.calls = 0

    def __call__(self) -> T:
        self.calls += 1
        self.plan.raise_or_charge(self.source)
        return self.provider()
