"""The resilience engine: guards applied at the Data Source Proxy.

One :class:`ResilienceHub` per RVM owns a :class:`SourceGuard` per
registered authority. The guard applies, in order, on every
source-touching call:

1. the **circuit breaker** — an open breaker fails fast with
   :class:`~repro.core.errors.SourceUnavailable` (no source round-trip,
   no retries), half-opening after its cool-down;
2. the **retry policy** — retryable errors (transient, timeout) are
   retried with exponential backoff + seeded jitter, up to the budget;
3. the **per-call deadline** — a call whose wall time exceeds
   ``RetryPolicy.call_deadline`` is treated as a timeout failure even
   though it returned.

Plugins are wrapped once at registration (:class:`GuardedPlugin`), so
the Synchronization Manager, the proxy's ``resolve`` routing and the
query executor's live fall-backs are all protected by the same guard
and share one breaker per source — a query storm and a sync pass see
the same availability picture.

Observability reuses the PR-2 trace-counter substrate: while a query
trace is active it is installed as this thread's *resilience sink*
(mirroring the lazy-materialization sink), so retries and breaker
events show up as ``resilience.*`` counters in EXPLAIN ANALYZE and the
service metrics. Outside traces, per-guard lifetime stats feed
:meth:`ResilienceHub.health_snapshot`.
"""

from __future__ import annotations

import random
import threading
import time
from contextvars import ContextVar, Token
from dataclasses import dataclass, field, replace
from typing import Callable, TypeVar

from .. import obs
from ..core.errors import DataSourceError, SourceUnavailable
from ..core.identity import ViewId
from ..core.resource_view import ResourceView
from .policy import BreakerState, CircuitBreaker, RetryPolicy

#: numeric encoding of breaker states for the ``resilience.breaker_state``
#: gauge (Prometheus cannot carry enum strings as sample values)
_STATE_CODES = {
    BreakerState.CLOSED: 0,
    BreakerState.OPEN: 1,
    BreakerState.HALF_OPEN: 2,
}

T = TypeVar("T")


# -- the trace sink (same shape as the lazy-materialization sink) ----------

class ResilienceSink:  # pragma: no cover - typing only
    def count(self, name: str, amount: int = 1) -> None: ...


_SINK: ContextVar[ResilienceSink | None] = ContextVar(
    "idm-resilience-sink", default=None
)


def install_resilience_sink(sink: ResilienceSink) -> Token:
    """Route this thread's retry/breaker events to ``sink``."""
    return _SINK.set(sink)


def uninstall_resilience_sink(token: Token) -> None:
    _SINK.reset(token)


def _emit(name: str) -> None:
    sink = _SINK.get()
    if sink is not None:
        sink.count(name)


# -- configuration ---------------------------------------------------------

@dataclass(frozen=True)
class ResilienceConfig:
    """Everything a :class:`ResilienceHub` needs, in one value.

    ``sleep`` and ``clock`` are injectable for tests (and the chaos
    suite injects a no-op sleep so seeded runs finish in milliseconds).
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker_failure_threshold: int = 5
    breaker_cooldown_seconds: float = 30.0
    breaker_half_open_probes: int = 1
    seed: int = 0
    clock: Callable[[], float] = time.monotonic
    sleep: Callable[[float], None] = time.sleep

    def with_fast_backoff(self) -> "ResilienceConfig":
        """A copy that never sleeps — for tests and benchmarks."""
        return replace(self, sleep=lambda _s: None)


@dataclass
class GuardStats:
    """Lifetime counters of one source guard (health snapshot row)."""

    calls: int = 0
    successes: int = 0
    failures: int = 0
    retries: int = 0
    short_circuits: int = 0
    deadline_overruns: int = 0


class SourceGuard:
    """Retry + breaker + deadline protection for one source.

    Thread-safe: breaker/stat updates take the guard's lock; the
    guarded call itself runs unlocked so slow sources do not serialize
    the worker pool.
    """

    def __init__(self, authority: str, config: ResilienceConfig):
        self.authority = authority
        self.config = config
        self.retry = config.retry
        self.breaker = CircuitBreaker(
            failure_threshold=config.breaker_failure_threshold,
            cooldown_seconds=config.breaker_cooldown_seconds,
            half_open_probes=config.breaker_half_open_probes,
            clock=config.clock,
        )
        self.stats = GuardStats()
        # str seeds hash deterministically (unlike tuple hashes, which
        # vary with PYTHONHASHSEED) — jitter must replay across runs
        self._rng = random.Random(f"{config.seed}:{authority}")
        self._lock = threading.Lock()
        obs.gauge_callback(
            "resilience.breaker_state",
            lambda guard: _STATE_CODES[guard.breaker.state],
            owner=self, labels={"source": authority},
        )

    def _count(self, key: str, amount: int = 1) -> None:
        """Bump the process-global labeled counter for this source."""
        if obs.enabled():
            obs.increment(f"resilience.{key}",
                          amount, labels={"source": self.authority})

    def _breaker_outcome(self, record: Callable[[], None]) -> None:
        """Apply a breaker outcome, announcing state transitions.

        Must be called with the guard lock held; the open/close counter
        and event carry the transition the lock just made atomic.
        """
        before = self.breaker.state
        record()
        after = self.breaker.state
        if after is before or not obs.enabled():
            return
        if after is BreakerState.OPEN:
            obs.increment("resilience.breaker_opened",
                          labels={"source": self.authority})
            obs.emit_event(
                obs.WARNING, "resilience", "resilience.breaker_opened",
                f"circuit for {self.authority} opened "
                f"(cooling {self.config.breaker_cooldown_seconds:g}s)",
                source=self.authority,
                consecutive_failures=self.breaker.consecutive_failures,
                times_opened=self.breaker.times_opened,
            )
        elif after is BreakerState.CLOSED:
            obs.increment("resilience.breaker_closed",
                          labels={"source": self.authority})
            obs.emit_event(
                obs.INFO, "resilience", "resilience.breaker_closed",
                f"circuit for {self.authority} closed after probe success",
                source=self.authority,
            )

    # -- the one entry point -------------------------------------------------

    def call(self, operation: str, fn: Callable[[], T]) -> T:
        """Run ``fn`` under this guard; raises
        :class:`SourceUnavailable` when the breaker is open or the
        retry budget is spent."""
        self._count("calls")
        with self._lock:
            self.stats.calls += 1
            if not self.breaker.allow():
                self.stats.short_circuits += 1
                retry_after = self.breaker.retry_after
                _emit(f"resilience.{self.authority}.short_circuit")
                self._count("short_circuits")
                raise SourceUnavailable(
                    f"{self.authority}.{operation}: circuit open "
                    f"(retry in {retry_after:.3f}s)"
                    if retry_after is not None else
                    f"{self.authority}.{operation}: circuit open",
                    authority=self.authority, retry_after=retry_after,
                )
        last_error: BaseException | None = None
        for attempt in range(1, self.retry.max_attempts + 1):
            if attempt > 1:
                with self._lock:
                    # the breaker may have opened mid-budget (its own
                    # threshold can be lower than the retry budget, or
                    # another thread may have tripped it)
                    if not self.breaker.allow():
                        self.stats.short_circuits += 1
                        self._count("short_circuits")
                        break
                    self.stats.retries += 1
                _emit(f"resilience.{self.authority}.retry")
                self._count("retries")
                self.config.sleep(self.retry.delay(attempt - 1, self._rng))
            started = self.config.clock()
            try:
                result = fn()
            except DataSourceError as error:
                last_error = error
                with self._lock:
                    self.stats.failures += 1
                    self._breaker_outcome(self.breaker.record_failure)
                _emit(f"resilience.{self.authority}.failure")
                self._count("failures")
                if not self.retry.is_retryable(error):
                    raise
                continue
            elapsed = self.config.clock() - started
            deadline = self.retry.call_deadline
            if deadline is not None and elapsed > deadline:
                # the call answered, but too late to be trusted as a
                # healthy source: count it against the breaker, yet
                # return the data we paid for
                with self._lock:
                    self.stats.deadline_overruns += 1
                    self._breaker_outcome(self.breaker.record_failure)
                _emit(f"resilience.{self.authority}.deadline_overrun")
                self._count("deadline_overruns")
                return result
            with self._lock:
                self.stats.successes += 1
                self._breaker_outcome(self.breaker.record_success)
            return result
        raise SourceUnavailable(
            f"{self.authority}.{operation}: retries exhausted "
            f"({self.retry.max_attempts} attempts)",
            authority=self.authority,
            retry_after=self.breaker.retry_after,
        ) from last_error

    # -- introspection -------------------------------------------------------

    @property
    def state(self) -> BreakerState:
        return self.breaker.state

    def snapshot(self) -> dict[str, object]:
        with self._lock:
            return {
                "state": self.breaker.state.value,
                "consecutive_failures": self.breaker.consecutive_failures,
                "times_opened": self.breaker.times_opened,
                "calls": self.stats.calls,
                "successes": self.stats.successes,
                "failures": self.stats.failures,
                "retries": self.stats.retries,
                "short_circuits": self.stats.short_circuits,
                "deadline_overruns": self.stats.deadline_overruns,
            }


class GuardedPlugin:
    """A registered plugin, re-routed through its source guard.

    Subscription is a local registration and never faulted;
    ``data_source_seconds`` is pure accounting. Everything else goes
    through :meth:`SourceGuard.call`.
    """

    def __init__(self, inner, guard: SourceGuard):
        self.inner = inner
        self.guard = guard
        self.authority = inner.authority

    def root_views(self) -> list[ResourceView]:
        return self.guard.call("root_views", self.inner.root_views)

    def resolve(self, view_id: ViewId) -> ResourceView | None:
        return self.guard.call("resolve",
                               lambda: self.inner.resolve(view_id))

    def subscribe_changes(self, callback: Callable[[ViewId], None]) -> bool:
        return self.inner.subscribe_changes(callback)

    def poll_changes(self) -> list[ViewId]:
        return self.guard.call("poll_changes", self.inner.poll_changes)

    def data_source_seconds(self) -> float:
        return self.inner.data_source_seconds()


class ResilienceHub:
    """Per-RVM registry of source guards.

    Created from a :class:`ResilienceConfig` and handed to
    :class:`~repro.rvm.manager.ResourceViewManager`, which wraps every
    plugin at registration. ``health_snapshot`` is the serving layer's
    per-source availability picture.
    """

    def __init__(self, config: ResilienceConfig | None = None):
        self.config = config if config is not None else ResilienceConfig()
        self._guards: dict[str, SourceGuard] = {}
        self._lock = threading.Lock()

    def guard_for(self, authority: str) -> SourceGuard:
        with self._lock:
            guard = self._guards.get(authority)
            if guard is None:
                guard = SourceGuard(authority, self.config)
                self._guards[authority] = guard
            return guard

    def wrap(self, plugin) -> GuardedPlugin:
        if isinstance(plugin, GuardedPlugin):
            return plugin
        return GuardedPlugin(plugin, self.guard_for(plugin.authority))

    # -- availability --------------------------------------------------------

    def open_sources(self) -> list[str]:
        """Authorities currently failing fast (breaker open and still
        cooling down)."""
        with self._lock:
            guards = list(self._guards.items())
        down = []
        for authority, guard in guards:
            if (guard.breaker.state is BreakerState.OPEN
                    and (guard.breaker.retry_after or 0.0) > 0.0):
                down.append(authority)
        return sorted(down)

    def health_snapshot(self) -> dict[str, dict[str, object]]:
        with self._lock:
            guards = list(self._guards.items())
        return {authority: guard.snapshot()
                for authority, guard in sorted(guards)}
