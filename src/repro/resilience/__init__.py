"""``repro.resilience`` — surviving flaky data sources.

iDM's defining property is lazy computation over *external* data
sources; in a real personal dataspace those are routinely slow, flaky
or offline. This package makes the system degrade instead of die:

* :mod:`faults` — deterministic, seedable fault injection
  (:class:`FaultPlan`, :class:`FaultyPluginWrapper`,
  :class:`FaultyProvider`) for chaos tests and demos;
* :mod:`policy` — :class:`RetryPolicy` (bounded retries, exponential
  backoff + jitter, per-call deadlines) and :class:`CircuitBreaker`
  (closed → open → half-open);
* :mod:`engine` — :class:`SourceGuard` / :class:`ResilienceHub`
  applying the policies uniformly at the Data Source Proxy boundary;
* :mod:`report` — :class:`DegradationReport`, the "what this answer is
  missing" attachment on query results and sync reports.

See ``DESIGN.md`` § "Surviving flaky sources".
"""

from .engine import (
    GuardedPlugin,
    GuardStats,
    ResilienceConfig,
    ResilienceHub,
    SourceGuard,
    install_resilience_sink,
    uninstall_resilience_sink,
)
from .faults import (
    Fault,
    FaultKind,
    FaultPlan,
    FaultyPluginWrapper,
    FaultyProvider,
)
from .policy import BreakerState, CircuitBreaker, RetryPolicy
from .report import DegradationReport, SourceIncident

__all__ = [
    "BreakerState", "CircuitBreaker", "DegradationReport", "Fault",
    "FaultKind", "FaultPlan", "FaultyPluginWrapper", "FaultyProvider",
    "GuardStats", "GuardedPlugin", "ResilienceConfig", "ResilienceHub",
    "RetryPolicy", "SourceGuard", "SourceIncident",
    "install_resilience_sink", "uninstall_resilience_sink",
]
