"""Networks of PDSMS instances (the paper's P2P future work).

"In addition, we are planning to extend our system to enable networks
of P2P instances." This package provides that extension: several
:class:`~repro.facade.Dataspace` instances (say, a laptop, a desktop and
an office machine) form a :class:`PeerNetwork`; iQL queries fan out to
all peers (or a named subset) and results merge with peer provenance.
"""

from .network import FederatedResult, Peer, PeerHit, PeerNetwork

__all__ = ["FederatedResult", "Peer", "PeerHit", "PeerNetwork"]
