"""Federated querying across peer dataspaces.

Each peer wraps one dataspace behind a small message-passing surface
(query in, hits out) with an optional per-peer latency model, so remote
peers cost something — the data-vs-query-shipping trade-off extends
naturally from indexes (within one PDSMS) to peers (across them).

Federation semantics are deliberately simple and deterministic:

* unary queries — the union of per-peer results, each hit tagged with
  its peer of origin;
* join queries — evaluated *per peer* (a cross-peer join would need
  shipping component data between peers; the prototype-faithful
  behavior is local joins, like running the same query on each
  machine);
* ranked search — per-peer TF-IDF scores merged by score (scores from
  different corpora are only roughly comparable; the paper leaves
  ranking as ongoing work, and cross-corpus calibration with it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..core.errors import IdmError
from ..facade import Dataspace
from ..imapsim.latency import LatencyModel
from ..query.executor import Hit, JoinHit


class PeerError(IdmError):
    """A federation-level failure (unknown peer, duplicate name)."""


@dataclass(frozen=True)
class PeerHit:
    """One federated result: a hit plus the peer it came from."""

    peer: str
    hit: Hit

    @property
    def uri(self) -> str:
        return self.hit.uri

    @property
    def global_uri(self) -> str:
        """A network-wide identifier: ``peer-name!view-uri``."""
        return f"{self.peer}!{self.hit.uri}"


@dataclass
class FederatedResult:
    """The merged result of one federated query."""

    query: str
    hits: list[PeerHit] = field(default_factory=list)
    join_pairs: list[tuple[str, JoinHit]] = field(default_factory=list)
    peers_asked: tuple[str, ...] = ()
    simulated_seconds: float = 0.0

    def __len__(self) -> int:
        return len(self.join_pairs) if self.join_pairs else len(self.hits)

    def by_peer(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for hit in self.hits:
            counts[hit.peer] = counts.get(hit.peer, 0) + 1
        for peer, _ in self.join_pairs:
            counts[peer] = counts.get(peer, 0) + 1
        return counts


class Peer:
    """One network participant: a named dataspace plus link latency."""

    def __init__(self, name: str, dataspace: Dataspace, *,
                 latency: LatencyModel | None = None):
        if not name or "!" in name:
            raise PeerError(f"bad peer name {name!r}")
        self.name = name
        self.dataspace = dataspace
        self.latency = latency if latency is not None else LatencyModel(
            connect=0.0, per_operation=0.0, per_kilobyte=0.0
        )

    def query(self, iql: str):
        """Answer one query, charging the link latency model."""
        self.latency.charge()
        result = self.dataspace.query(iql)
        payload = sum(len(h.uri) for h in result.hits)
        self.latency.charge(bytes_transferred=payload)
        return result

    def search(self, text: str, *, limit: int):
        self.latency.charge()
        return self.dataspace.search(text, limit=limit)


class PeerNetwork:
    """A set of peers answering federated queries."""

    def __init__(self) -> None:
        self._peers: dict[str, Peer] = {}

    def add_peer(self, peer: Peer) -> Peer:
        if peer.name in self._peers:
            raise PeerError(f"peer {peer.name!r} already joined")
        self._peers[peer.name] = peer
        return peer

    def join(self, name: str, dataspace: Dataspace, *,
             latency: LatencyModel | None = None) -> Peer:
        """Convenience: wrap and add a dataspace in one call."""
        return self.add_peer(Peer(name, dataspace, latency=latency))

    def leave(self, name: str) -> None:
        if name not in self._peers:
            raise PeerError(f"no peer {name!r}")
        del self._peers[name]

    def peers(self) -> list[str]:
        return sorted(self._peers)

    def peer(self, name: str) -> Peer:
        try:
            return self._peers[name]
        except KeyError:
            raise PeerError(f"no peer {name!r}") from None

    # -- federated operations ------------------------------------------------

    def query(self, iql: str, *,
              peers: Iterable[str] | None = None) -> FederatedResult:
        """Fan one iQL query out to (a subset of) the network."""
        names = self._select(peers)
        federated = FederatedResult(query=iql, peers_asked=tuple(names))
        for name in names:
            peer = self._peers[name]
            before = peer.latency.simulated_seconds
            result = peer.query(iql)
            federated.simulated_seconds += (
                peer.latency.simulated_seconds - before
            )
            federated.hits.extend(
                PeerHit(peer=name, hit=hit) for hit in result.hits
            )
            federated.join_pairs.extend(
                (name, pair) for pair in result.pairs
            )
        federated.hits.sort(key=lambda h: h.global_uri)
        return federated

    def search(self, text: str, *, limit: int = 10,
               peers: Iterable[str] | None = None) -> list[PeerHit]:
        """Federated ranked search, merged by score."""
        scored: list[tuple[float, PeerHit]] = []
        for name in self._select(peers):
            peer = self._peers[name]
            for hit in peer.search(text, limit=limit):
                scored.append((hit.score, PeerHit(
                    peer=name,
                    hit=Hit(uri=hit.uri, name=hit.name,
                            class_name=hit.class_name),
                )))
        scored.sort(key=lambda pair: (-pair[0], pair[1].global_uri))
        return [hit for _, hit in scored[:limit]]

    def _select(self, peers: Iterable[str] | None) -> list[str]:
        if peers is None:
            return self.peers()
        names = list(peers)
        for name in names:
            if name not in self._peers:
                raise PeerError(f"no peer {name!r}")
        return names
