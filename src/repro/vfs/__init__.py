"""A virtual filesystem with metadata and change notifications.

The paper's prototype scans an NTFS volume and subscribes to Mac OS X
file events. This package provides the equivalent in-process substrate:
a hierarchical namespace of files, folders and folder *links* (which
create the cyclic graph of Figure 1), per-node metadata matching the
paper's ``W_FS`` (size, creation time, last modified time), a
deterministic logical clock, and an event bus the Synchronization
Manager subscribes to.
"""

from .clock import LogicalClock
from .events import FsEvent, FsEventKind
from .vfs import DirectoryEntry, FileEntry, LinkEntry, VirtualFileSystem

__all__ = [
    "LogicalClock", "FsEvent", "FsEventKind",
    "DirectoryEntry", "FileEntry", "LinkEntry", "VirtualFileSystem",
]
