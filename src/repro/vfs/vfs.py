"""The virtual filesystem.

A hierarchical namespace of three entry kinds:

* :class:`FileEntry` — name, text content, ``W_FS`` metadata;
* :class:`DirectoryEntry` — named children;
* :class:`LinkEntry` — a folder link pointing at another absolute path.
  Links are what let a files&folders tree become a *graph*: the paper's
  Figure 1 shows an 'All Projects' link inside 'PIM' pointing back at
  the top-level 'Projects' folder, closing a cycle.

Paths are ``/``-separated absolute strings. All mutation methods emit
:class:`~repro.vfs.events.FsEvent` notifications and advance the
filesystem's logical clock, so creation/modification times are
deterministic and strictly ordered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Iterator

from ..core.errors import VfsError
from .clock import LogicalClock
from .events import EventBus, FsEvent, FsEventKind


@dataclass
class _Entry:
    name: str
    created: datetime
    modified: datetime


@dataclass
class FileEntry(_Entry):
    content: str = ""

    @property
    def size(self) -> int:
        return len(self.content.encode("utf-8", "replace"))


@dataclass
class DirectoryEntry(_Entry):
    children: dict[str, "_Entry"] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return 4096  # conventional directory size, as in the paper's example


@dataclass
class LinkEntry(_Entry):
    target: str = "/"

    @property
    def size(self) -> int:
        return len(self.target)


def _split(path: str) -> list[str]:
    if not path.startswith("/"):
        raise VfsError(f"path must be absolute: {path!r}")
    return [part for part in path.split("/") if part]


def _normalize(path: str) -> str:
    return "/" + "/".join(_split(path))


class VirtualFileSystem:
    """An in-memory filesystem with events and deterministic times."""

    def __init__(self, clock: LogicalClock | None = None):
        self.clock = clock if clock is not None else LogicalClock()
        now = self.clock.now()
        self._root = DirectoryEntry(name="", created=now, modified=now)
        self.events = EventBus()

    # -- navigation ---------------------------------------------------------

    def _lookup(self, path: str) -> _Entry:
        entry: _Entry = self._root
        for part in _split(path):
            if not isinstance(entry, DirectoryEntry):
                raise VfsError(f"not a directory on the way to {path!r}")
            try:
                entry = entry.children[part]
            except KeyError:
                raise VfsError(f"no such entry: {path!r}") from None
        return entry

    def _parent_of(self, path: str) -> tuple[DirectoryEntry, str]:
        parts = _split(path)
        if not parts:
            raise VfsError("the root has no parent")
        parent = self._lookup("/" + "/".join(parts[:-1]))
        if not isinstance(parent, DirectoryEntry):
            raise VfsError(f"parent of {path!r} is not a directory")
        return parent, parts[-1]

    def exists(self, path: str) -> bool:
        try:
            self._lookup(path)
            return True
        except VfsError:
            return False

    def is_dir(self, path: str) -> bool:
        try:
            return isinstance(self._lookup(path), DirectoryEntry)
        except VfsError:
            return False

    def is_file(self, path: str) -> bool:
        try:
            return isinstance(self._lookup(path), FileEntry)
        except VfsError:
            return False

    def is_link(self, path: str) -> bool:
        try:
            return isinstance(self._lookup(path), LinkEntry)
        except VfsError:
            return False

    def entry(self, path: str) -> _Entry:
        """The raw entry at ``path`` (no link resolution)."""
        return self._lookup(path)

    def resolve_link(self, path: str) -> str:
        entry = self._lookup(path)
        if not isinstance(entry, LinkEntry):
            raise VfsError(f"{path!r} is not a link")
        return entry.target

    def listdir(self, path: str = "/") -> list[str]:
        entry = self._lookup(path)
        if not isinstance(entry, DirectoryEntry):
            raise VfsError(f"{path!r} is not a directory")
        return sorted(entry.children)

    def stat(self, path: str) -> dict[str, object]:
        """``W_FS``-shaped metadata: size, created, modified, kind, path."""
        entry = self._lookup(path)
        kind = ("dir" if isinstance(entry, DirectoryEntry)
                else "link" if isinstance(entry, LinkEntry) else "file")
        return {
            "size": entry.size,
            "created": entry.created,
            "modified": entry.modified,
            "kind": kind,
            "path": _normalize(path),
        }

    def read(self, path: str) -> str:
        entry = self._lookup(path)
        if not isinstance(entry, FileEntry):
            raise VfsError(f"{path!r} is not a file")
        return entry.content

    def walk(self, path: str = "/") -> Iterator[tuple[str, list[str], list[str]]]:
        """Like :func:`os.walk`: yields (dirpath, dirnames, filenames).

        Links are reported with the files (they are leaves of the tree
        walk; the graph structure they add is the converter's business).
        """
        entry = self._lookup(path)
        if not isinstance(entry, DirectoryEntry):
            raise VfsError(f"{path!r} is not a directory")
        normalized = _normalize(path)
        directories = []
        files = []
        for name, child in sorted(entry.children.items()):
            if isinstance(child, DirectoryEntry):
                directories.append(name)
            else:
                files.append(name)
        yield normalized, directories, files
        for name in directories:
            child_path = normalized.rstrip("/") + "/" + name
            yield from self.walk(child_path)

    # -- mutation --------------------------------------------------------------

    def mkdir(self, path: str, *, parents: bool = False) -> None:
        parts = _split(path)
        entry: _Entry = self._root
        walked: list[str] = []
        for index, part in enumerate(parts):
            if not isinstance(entry, DirectoryEntry):
                raise VfsError(f"not a directory: /{'/'.join(walked)}")
            walked.append(part)
            child = entry.children.get(part)
            is_last = index == len(parts) - 1
            if child is None:
                if not is_last and not parents:
                    raise VfsError(f"missing parent: /{'/'.join(walked)}")
                now = self.clock.tick()
                child = DirectoryEntry(name=part, created=now, modified=now)
                entry.children[part] = child
                self.events.publish(
                    FsEvent(FsEventKind.CREATED, "/" + "/".join(walked))
                )
            elif is_last:
                raise VfsError(f"entry exists: {path!r}")
            entry = child

    def write_file(self, path: str, content: str, *,
                   parents: bool = False) -> None:
        """Create or overwrite a file."""
        parts = _split(path)
        if parents and len(parts) > 1:
            parent_path = "/" + "/".join(parts[:-1])
            if not self.exists(parent_path):
                self.mkdir(parent_path, parents=True)
        parent, name = self._parent_of(path)
        existing = parent.children.get(name)
        now = self.clock.tick()
        if existing is None:
            parent.children[name] = FileEntry(
                name=name, created=now, modified=now, content=content
            )
            parent.modified = now
            self.events.publish(FsEvent(FsEventKind.CREATED, _normalize(path)))
        elif isinstance(existing, FileEntry):
            existing.content = content
            existing.modified = now
            self.events.publish(FsEvent(FsEventKind.MODIFIED, _normalize(path)))
        else:
            raise VfsError(f"{path!r} exists and is not a file")

    def make_link(self, path: str, target: str) -> None:
        """Create a folder link at ``path`` pointing to ``target``."""
        parent, name = self._parent_of(path)
        if name in parent.children:
            raise VfsError(f"entry exists: {path!r}")
        target = _normalize(target)
        now = self.clock.tick()
        parent.children[name] = LinkEntry(
            name=name, created=now, modified=now, target=target
        )
        parent.modified = now
        self.events.publish(FsEvent(FsEventKind.CREATED, _normalize(path)))

    def delete(self, path: str, *, recursive: bool = False) -> None:
        parent, name = self._parent_of(path)
        entry = parent.children.get(name)
        if entry is None:
            raise VfsError(f"no such entry: {path!r}")
        if isinstance(entry, DirectoryEntry) and entry.children and not recursive:
            raise VfsError(f"directory not empty: {path!r}")
        del parent.children[name]
        parent.modified = self.clock.tick()
        self.events.publish(FsEvent(FsEventKind.DELETED, _normalize(path)))

    def move(self, source: str, destination: str) -> None:
        source_parent, source_name = self._parent_of(source)
        entry = source_parent.children.get(source_name)
        if entry is None:
            raise VfsError(f"no such entry: {source!r}")
        dest_parent, dest_name = self._parent_of(destination)
        if dest_name in dest_parent.children:
            raise VfsError(f"entry exists: {destination!r}")
        del source_parent.children[source_name]
        entry.name = dest_name
        dest_parent.children[dest_name] = entry
        now = self.clock.tick()
        source_parent.modified = now
        dest_parent.modified = now
        self.events.publish(FsEvent(
            FsEventKind.MOVED, _normalize(destination),
            old_path=_normalize(source),
        ))

    # -- statistics ---------------------------------------------------------------

    def count_entries(self) -> dict[str, int]:
        """Counts of files, directories and links in the whole tree."""
        counts = {"files": 0, "dirs": 0, "links": 0}
        stack: list[_Entry] = [self._root]
        while stack:
            entry = stack.pop()
            if isinstance(entry, DirectoryEntry):
                counts["dirs"] += 1
                stack.extend(entry.children.values())
            elif isinstance(entry, LinkEntry):
                counts["links"] += 1
            else:
                counts["files"] += 1
        counts["dirs"] -= 1  # do not count the root itself
        return counts

    def total_content_bytes(self) -> int:
        total = 0
        stack: list[_Entry] = [self._root]
        while stack:
            entry = stack.pop()
            if isinstance(entry, DirectoryEntry):
                stack.extend(entry.children.values())
            elif isinstance(entry, FileEntry):
                total += entry.size
        return total
