"""A deterministic logical clock.

Simulated subsystems (filesystem, IMAP server, feeds) need timestamps,
but wall-clock time would make datasets and benchmarks non-reproducible.
:class:`LogicalClock` hands out strictly increasing datetimes derived
from a tick counter anchored at a fixed epoch (the paper's era, 2005).
"""

from __future__ import annotations

from datetime import datetime, timedelta


class LogicalClock:
    """Strictly increasing, deterministic datetimes."""

    #: One tick's worth of simulated time.
    DEFAULT_STEP = timedelta(seconds=61)

    def __init__(self, epoch: datetime | None = None,
                 step: timedelta | None = None):
        self.epoch = epoch if epoch is not None else datetime(2005, 1, 1, 8, 0, 0)
        self.step = step if step is not None else self.DEFAULT_STEP
        self._ticks = 0

    def now(self) -> datetime:
        """The current simulated time (does not advance)."""
        return self.epoch + self._ticks * self.step

    def tick(self) -> datetime:
        """Advance one step and return the new time."""
        self._ticks += 1
        return self.now()

    def advance(self, ticks: int) -> datetime:
        """Advance several steps at once."""
        if ticks < 0:
            raise ValueError("the clock cannot go backwards")
        self._ticks += ticks
        return self.now()

    @property
    def ticks(self) -> int:
        return self._ticks
