"""Filesystem change events.

The paper's Synchronization Manager "is able to subscribe to file events
of the hpfs file system created by Mac OS X"; the virtual filesystem
reproduces that contract with an in-process event bus.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable


class FsEventKind(enum.Enum):
    CREATED = "created"
    MODIFIED = "modified"
    DELETED = "deleted"
    MOVED = "moved"


@dataclass(frozen=True, slots=True)
class FsEvent:
    """One change notification. ``old_path`` is set for moves."""

    kind: FsEventKind
    path: str
    old_path: str | None = None


Subscriber = Callable[[FsEvent], None]


class EventBus:
    """Synchronous fan-out of events to subscribers.

    Delivery is in subscription order and synchronous — the simulated
    subsystems are single-threaded, as was the prototype's indexing
    pipeline.
    """

    def __init__(self) -> None:
        self._subscribers: list[Subscriber] = []

    def subscribe(self, callback: Subscriber) -> Callable[[], None]:
        """Register ``callback``; returns an unsubscribe function."""
        self._subscribers.append(callback)

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(callback)
            except ValueError:
                pass

        return unsubscribe

    def publish(self, event: FsEvent) -> None:
        for callback in list(self._subscribers):
            callback(event)

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)
