"""Heap tables with primary keys and secondary indexes.

A :class:`Table` stores rows in insertion order (a heap of row slots),
enforces primary-key uniqueness through an internal index, and maintains
secondary B+-tree or hash indexes declared by the caller. Reads go
through :meth:`scan` (full scan with an optional predicate),
:meth:`get` (primary key point lookup) and :meth:`lookup`/:meth:`range`
(secondary index access).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Sequence

from ..core.errors import TableError
from .btree import BPlusTree
from .hashindex import HashIndex
from .schema import TableSchema

Row = tuple[Any, ...]


class Table:
    """One table of the embedded store."""

    def __init__(self, name: str, schema: TableSchema):
        self.name = name
        self.schema = schema
        self._rows: list[Row | None] = []   # None = deleted slot
        self._live = 0
        self._primary: dict[tuple[Any, ...], int] = {}
        self._indexes: dict[str, tuple[tuple[str, ...], BPlusTree | HashIndex]] = {}

    # -- DDL --------------------------------------------------------------------

    def create_index(self, index_name: str, columns: Sequence[str] | str, *,
                     kind: str = "btree") -> None:
        """Declare a secondary index over ``columns`` and backfill it."""
        if isinstance(columns, str):
            columns = (columns,)
        columns = tuple(columns)
        if index_name in self._indexes:
            raise TableError(f"index {index_name!r} already exists")
        for column in columns:
            if column not in self.schema:
                raise TableError(f"unknown column {column!r}")
        if kind == "btree":
            index: BPlusTree | HashIndex = BPlusTree()
        elif kind == "hash":
            index = HashIndex()
        else:
            raise TableError(f"unknown index kind {kind!r}")
        self._indexes[index_name] = (columns, index)
        for row_id, row in enumerate(self._rows):
            if row is not None:
                index.insert(self._index_key(columns, row), row_id)

    def _index_key(self, columns: tuple[str, ...], row: Row) -> Any:
        values = tuple(row[self.schema.position(c)] for c in columns)
        return values[0] if len(values) == 1 else values

    # -- writes -----------------------------------------------------------------

    def insert(self, values: Sequence[Any] | dict[str, Any]) -> int:
        """Insert one row; returns its row id."""
        if isinstance(values, dict):
            row = self.schema.row_from_dict(values)
        else:
            row = self.schema.validate_row(values)
        if self.schema.primary_key:
            key = self.schema.key_of(row)
            if key in self._primary:
                raise TableError(
                    f"duplicate primary key {key!r} in table {self.name!r}"
                )
        row_id = len(self._rows)
        self._rows.append(row)
        self._live += 1
        if self.schema.primary_key:
            self._primary[self.schema.key_of(row)] = row_id
        for columns, index in self._indexes.values():
            index.insert(self._index_key(columns, row), row_id)
        return row_id

    def update(self, key: Sequence[Any] | Any,
               changes: dict[str, Any]) -> bool:
        """Update the row with primary key ``key``; True when found."""
        row_id = self._row_id_for_key(key)
        if row_id is None:
            return False
        old_row = self._rows[row_id]
        assert old_row is not None
        mapping = dict(zip(self.schema.names, old_row))
        mapping.update(changes)
        new_row = self.schema.row_from_dict(mapping)
        new_key = self.schema.key_of(new_row)
        old_key = self.schema.key_of(old_row)
        if new_key != old_key and new_key in self._primary:
            raise TableError(f"duplicate primary key {new_key!r}")
        for columns, index in self._indexes.values():
            index.remove(self._index_key(columns, old_row), row_id)
            index.insert(self._index_key(columns, new_row), row_id)
        if new_key != old_key:
            del self._primary[old_key]
            self._primary[new_key] = row_id
        self._rows[row_id] = new_row
        return True

    def delete(self, key: Sequence[Any] | Any) -> bool:
        """Delete by primary key; True when the row existed."""
        row_id = self._row_id_for_key(key)
        if row_id is None:
            return False
        row = self._rows[row_id]
        assert row is not None
        for columns, index in self._indexes.values():
            index.remove(self._index_key(columns, row), row_id)
        del self._primary[self.schema.key_of(row)]
        self._rows[row_id] = None
        self._live -= 1
        return True

    def delete_where(self, predicate: Callable[[dict[str, Any]], bool]) -> int:
        """Delete all rows matching ``predicate``; returns the count."""
        doomed = [self.schema.key_of(row) for row in self._live_rows()
                  if predicate(dict(zip(self.schema.names, row)))]
        for key in doomed:
            self.delete(key)
        return len(doomed)

    def _row_id_for_key(self, key: Sequence[Any] | Any) -> int | None:
        if not self.schema.primary_key:
            raise TableError(f"table {self.name!r} has no primary key")
        if not isinstance(key, tuple):
            key = (key,)
        return self._primary.get(tuple(key))

    # -- reads --------------------------------------------------------------------

    def _live_rows(self) -> Iterator[Row]:
        return (row for row in self._rows if row is not None)

    def __len__(self) -> int:
        return self._live

    def get(self, key: Sequence[Any] | Any) -> dict[str, Any] | None:
        """Point lookup by primary key; returns a column→value dict."""
        row_id = self._row_id_for_key(key)
        if row_id is None:
            return None
        row = self._rows[row_id]
        assert row is not None
        return dict(zip(self.schema.names, row))

    def scan(self, predicate: Callable[[dict[str, Any]], bool] | None = None,
             ) -> Iterator[dict[str, Any]]:
        """Full scan, optionally filtered."""
        for row in self._live_rows():
            record = dict(zip(self.schema.names, row))
            if predicate is None or predicate(record):
                yield record

    def lookup(self, index_name: str, key: Any) -> list[dict[str, Any]]:
        """Equality lookup through a secondary index."""
        columns, index = self._get_index(index_name)
        out = []
        for row_id in index.get(key):
            row = self._rows[row_id]
            if row is not None:
                out.append(dict(zip(self.schema.names, row)))
        return out

    def range(self, index_name: str, low: Any = None, high: Any = None,
              **bounds: bool) -> Iterator[dict[str, Any]]:
        """Range scan through a B+-tree index."""
        columns, index = self._get_index(index_name)
        if not isinstance(index, BPlusTree):
            raise TableError(f"index {index_name!r} does not support ranges")
        for _, row_ids in index.range(low, high, **bounds):
            for row_id in row_ids:
                row = self._rows[row_id]
                if row is not None:
                    yield dict(zip(self.schema.names, row))

    def _get_index(self, index_name: str):
        try:
            return self._indexes[index_name]
        except KeyError:
            raise TableError(f"no index {index_name!r} on {self.name!r}") from None

    # -- statistics ------------------------------------------------------------------

    def size_bytes(self) -> int:
        """Approximate table size: row data + primary key + indexes."""
        data = sum(self.schema.row_size(row) for row in self._live_rows())
        primary = 24 * len(self._primary)
        secondary = sum(index.size_bytes()
                        for _, index in self._indexes.values())
        return data + primary + secondary

    def index_names(self) -> list[str]:
        return sorted(self._indexes)
