"""The embedded database: a named collection of tables."""

from __future__ import annotations

from typing import Iterator, Sequence

from ..core.errors import TableError
from .schema import Column, TableSchema
from .table import Table


class Database:
    """A single-process, in-memory relational database."""

    def __init__(self, name: str = "idm"):
        self.name = name
        self._tables: dict[str, Table] = {}

    def create_table(self, name: str, columns: Sequence[Column],
                     primary_key: Sequence[str] | str | None = None) -> Table:
        if name in self._tables:
            raise TableError(f"table {name!r} already exists")
        table = Table(name, TableSchema(columns, primary_key))
        self._tables[name] = table
        return table

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise TableError(f"no table {name!r}")
        del self._tables[name]

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise TableError(f"no table {name!r}") from None

    def __contains__(self, name: object) -> bool:
        return name in self._tables

    def tables(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def size_bytes(self) -> int:
        """Total footprint of all tables (feeds the RV Catalog column of
        Table 3)."""
        return sum(table.size_bytes() for table in self._tables.values())
