"""A hash index: equality lookups only, duplicate-friendly.

The lighter sibling of :class:`~repro.store.btree.BPlusTree` — the paper
names both as suitable tuple-component index structures. Used by the
catalog for exact-match columns (class name, authority).
"""

from __future__ import annotations

from typing import Any, Iterator


class HashIndex:
    """Maps hashable keys to lists of values."""

    __slots__ = ("_buckets", "_size")

    def __init__(self) -> None:
        self._buckets: dict[Any, list[Any]] = {}
        self._size = 0

    def insert(self, key: Any, value: Any) -> None:
        self._buckets.setdefault(key, []).append(value)
        self._size += 1

    def get(self, key: Any) -> list[Any]:
        return list(self._buckets.get(key, ()))

    def remove(self, key: Any, value: Any | None = None) -> bool:
        bucket = self._buckets.get(key)
        if bucket is None:
            return False
        if value is None:
            self._size -= len(bucket)
            del self._buckets[key]
            return True
        try:
            bucket.remove(value)
        except ValueError:
            return False
        self._size -= 1
        if not bucket:
            del self._buckets[key]
        return True

    def __contains__(self, key: object) -> bool:
        return key in self._buckets

    def __len__(self) -> int:
        return self._size

    def keys(self) -> Iterator[Any]:
        return iter(self._buckets)

    def size_bytes(self) -> int:
        total = 0
        for key, values in self._buckets.items():
            key_size = (len(key.encode("utf-8", "replace")) + 4
                        if isinstance(key, str) else 8)
            total += key_size + 8 * len(values) + 16
        return total
