"""An embedded relational store (the reproduction's Apache Derby).

iMeMex implements its Resource View Catalog "on top of Apache Derby
10.1". This package provides the equivalent substrate: typed tables with
primary keys, secondary B+-tree and hash indexes, predicate scans and
page-based size accounting (the catalog's contribution to Table 3).

It is a single-process, in-memory store — exactly what the catalog of a
personal dataspace needs; durability is out of the paper's scope.
"""

from .btree import BPlusTree
from .database import Database
from .hashindex import HashIndex
from .schema import Column, TableSchema
from .table import Table
from .types import BOOL, DATE, INT, REAL, TEXT, ColumnType

__all__ = [
    "BPlusTree", "Database", "HashIndex", "Column", "TableSchema", "Table",
    "BOOL", "DATE", "INT", "REAL", "TEXT", "ColumnType",
]
