"""Table schemas for the embedded store."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

from ..core.errors import TableError
from .types import ColumnType


@dataclass(frozen=True, slots=True)
class Column:
    """One column: name, type, nullability."""

    name: str
    type: ColumnType
    nullable: bool = True

    def __str__(self) -> str:
        null = "" if self.nullable else " NOT NULL"
        return f"{self.name} {self.type.name}{null}"


class TableSchema:
    """An ordered list of columns plus an optional primary key.

    Primary key columns are implicitly NOT NULL, mirroring SQL.
    """

    __slots__ = ("_columns", "_positions", "primary_key")

    def __init__(self, columns: Sequence[Column],
                 primary_key: Sequence[str] | str | None = None):
        if not columns:
            raise TableError("a table needs at least one column")
        self._positions: dict[str, int] = {}
        normalized: list[Column] = []
        if isinstance(primary_key, str):
            primary_key = (primary_key,)
        key = tuple(primary_key) if primary_key else ()
        for column in columns:
            if column.name in self._positions:
                raise TableError(f"duplicate column {column.name!r}")
            if column.name in key and column.nullable:
                column = Column(column.name, column.type, nullable=False)
            self._positions[column.name] = len(normalized)
            normalized.append(column)
        self._columns = tuple(normalized)
        for name in key:
            if name not in self._positions:
                raise TableError(f"primary key column {name!r} not in schema")
        self.primary_key = key

    @property
    def columns(self) -> tuple[Column, ...]:
        return self._columns

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self._columns)

    def position(self, name: str) -> int:
        try:
            return self._positions[name]
        except KeyError:
            raise TableError(f"unknown column {name!r}") from None

    def __contains__(self, name: object) -> bool:
        return name in self._positions

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __len__(self) -> int:
        return len(self._columns)

    def validate_row(self, values: Sequence[Any]) -> tuple[Any, ...]:
        """Validate and normalize one row; returns the stored tuple."""
        if len(values) != len(self._columns):
            raise TableError(
                f"expected {len(self._columns)} values, got {len(values)}"
            )
        for column, value in zip(self._columns, values):
            column.type.validate(value, nullable=column.nullable)
        return tuple(values)

    def row_from_dict(self, mapping: dict[str, Any]) -> tuple[Any, ...]:
        """Build a row from a name→value dict; missing columns get NULL."""
        unknown = set(mapping) - set(self._positions)
        if unknown:
            raise TableError(f"unknown columns: {sorted(unknown)}")
        return self.validate_row(
            tuple(mapping.get(c.name) for c in self._columns)
        )

    def key_of(self, row: Sequence[Any]) -> tuple[Any, ...]:
        """Extract the primary key values of a row."""
        return tuple(row[self._positions[name]] for name in self.primary_key)

    def row_size(self, row: Sequence[Any]) -> int:
        """Approximate serialized row size (plus a small header)."""
        return 8 + sum(c.type.size_of(v) for c, v in zip(self._columns, row))
