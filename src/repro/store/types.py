"""Column types for the embedded store.

Each type validates Python values and estimates their serialized size;
size estimates roll up through rows and tables into the page-based
numbers the benchmark harness reports for the Resource View Catalog.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, datetime
from typing import Any

from ..core.errors import TableError


@dataclass(frozen=True, slots=True)
class ColumnType:
    """A column type: name, accepted Python types, size estimator."""

    name: str
    python_types: tuple[type, ...]
    fixed_size: int | None = None  # bytes; None = variable length

    def validate(self, value: Any, *, nullable: bool) -> None:
        if value is None:
            if not nullable:
                raise TableError(f"NULL not allowed for type {self.name}")
            return
        if isinstance(value, bool) and bool not in self.python_types:
            raise TableError(f"value {value!r} is not a {self.name}")
        if not isinstance(value, self.python_types):
            raise TableError(
                f"value {value!r} ({type(value).__name__}) is not a {self.name}"
            )

    def size_of(self, value: Any) -> int:
        """Approximate serialized size of one value (1 byte for NULL)."""
        if value is None:
            return 1
        if self.fixed_size is not None:
            return self.fixed_size
        if isinstance(value, str):
            return len(value.encode("utf-8", "replace")) + 4
        if isinstance(value, bytes):
            return len(value) + 4
        return 8


INT = ColumnType("int", (int,), fixed_size=8)
REAL = ColumnType("real", (float, int), fixed_size=8)
BOOL = ColumnType("bool", (bool,), fixed_size=1)
TEXT = ColumnType("text", (str,))
BLOB = ColumnType("blob", (bytes,))
DATE = ColumnType("date", (date, datetime), fixed_size=8)

_BY_NAME = {t.name: t for t in (INT, REAL, BOOL, TEXT, BLOB, DATE)}


def type_by_name(name: str) -> ColumnType:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise TableError(f"unknown column type {name!r}") from None
