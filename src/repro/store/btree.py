"""A B+-tree.

The paper notes that "for tuple component indexes hash-tables or
B+-trees can be used to provide efficient access"; the embedded store
uses this tree for secondary indexes and range scans. Keys are arbitrary
totally-ordered Python values (tuples for composite keys); values are
lists of row ids (duplicates allowed, as a secondary index requires).

Classic order-``b`` B+-tree: internal nodes hold separator keys, leaves
hold (key, [row ids]) pairs and are chained for range scans. Deletion
uses the standard borrow/merge rebalancing.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Any, Iterator


class _Node:
    __slots__ = ("keys", "children", "values", "next_leaf", "is_leaf")

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        self.keys: list[Any] = []
        self.children: list["_Node"] = []      # internal nodes only
        self.values: list[list[Any]] = []      # leaves only
        self.next_leaf: "_Node | None" = None  # leaves only


class BPlusTree:
    """A B+-tree mapping keys to lists of values (duplicate-friendly)."""

    def __init__(self, order: int = 32):
        if order < 4:
            raise ValueError("B+-tree order must be >= 4")
        self.order = order
        self._root = _Node(is_leaf=True)
        self._size = 0  # number of (key, value) pairs

    # -- lookup ---------------------------------------------------------------

    def _find_leaf(self, key: Any) -> _Node:
        node = self._root
        while not node.is_leaf:
            index = bisect_right(node.keys, key)
            node = node.children[index]
        return node

    def get(self, key: Any) -> list[Any]:
        """All values stored under ``key`` (empty list when absent)."""
        leaf = self._find_leaf(key)
        index = bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return list(leaf.values[index])
        return []

    def __contains__(self, key: object) -> bool:
        leaf = self._find_leaf(key)
        index = bisect_left(leaf.keys, key)
        return index < len(leaf.keys) and leaf.keys[index] == key

    def __len__(self) -> int:
        return self._size

    @property
    def key_count(self) -> int:
        return sum(1 for _ in self.keys())

    def keys(self) -> Iterator[Any]:
        """All keys in ascending order."""
        for key, _ in self.items():
            yield key

    def items(self) -> Iterator[tuple[Any, list[Any]]]:
        """All ``(key, values)`` pairs in ascending key order."""
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        while node is not None:
            yield from zip(node.keys, node.values)
            node = node.next_leaf

    def range(self, low: Any = None, high: Any = None, *,
              include_low: bool = True,
              include_high: bool = True) -> Iterator[tuple[Any, list[Any]]]:
        """Pairs with ``low <= key <= high`` (bounds optional/exclusive-able)."""
        if low is None:
            node = self._root
            while not node.is_leaf:
                node = node.children[0]
            index = 0
        else:
            node = self._find_leaf(low)
            index = (bisect_left(node.keys, low) if include_low
                     else bisect_right(node.keys, low))
        while node is not None:
            while index < len(node.keys):
                key = node.keys[index]
                if high is not None:
                    if key > high or (key == high and not include_high):
                        return
                yield key, node.values[index]
                index += 1
            node = node.next_leaf
            index = 0

    # -- insert ---------------------------------------------------------------

    def insert(self, key: Any, value: Any) -> None:
        """Add ``value`` under ``key`` (duplicates accumulate)."""
        root = self._root
        if len(root.keys) >= self.order:
            new_root = _Node(is_leaf=False)
            new_root.children.append(root)
            self._split_child(new_root, 0)
            self._root = new_root
        self._insert_nonfull(self._root, key, value)
        self._size += 1

    def _insert_nonfull(self, node: _Node, key: Any, value: Any) -> None:
        while not node.is_leaf:
            index = bisect_right(node.keys, key)
            child = node.children[index]
            if len(child.keys) >= self.order:
                self._split_child(node, index)
                if key >= node.keys[index]:
                    index += 1
            node = node.children[index]
        index = bisect_left(node.keys, key)
        if index < len(node.keys) and node.keys[index] == key:
            node.values[index].append(value)
        else:
            node.keys.insert(index, key)
            node.values.insert(index, [value])

    def _split_child(self, parent: _Node, index: int) -> None:
        child = parent.children[index]
        middle = len(child.keys) // 2
        sibling = _Node(is_leaf=child.is_leaf)
        if child.is_leaf:
            sibling.keys = child.keys[middle:]
            sibling.values = child.values[middle:]
            child.keys = child.keys[:middle]
            child.values = child.values[:middle]
            sibling.next_leaf = child.next_leaf
            child.next_leaf = sibling
            separator = sibling.keys[0]
        else:
            separator = child.keys[middle]
            sibling.keys = child.keys[middle + 1:]
            sibling.children = child.children[middle + 1:]
            child.keys = child.keys[:middle]
            child.children = child.children[:middle + 1]
        parent.keys.insert(index, separator)
        parent.children.insert(index + 1, sibling)

    # -- delete ---------------------------------------------------------------

    def remove(self, key: Any, value: Any | None = None) -> bool:
        """Remove one value (or the whole key when ``value is None``).

        Returns True when something was removed. Rebalances so that the
        tree stays within B+-tree occupancy invariants.
        """
        removed = self._remove(self._root, key, value)
        if removed:
            if not self._root.is_leaf and len(self._root.children) == 1:
                self._root = self._root.children[0]
        return removed

    def _remove(self, node: _Node, key: Any, value: Any | None) -> bool:
        if node.is_leaf:
            index = bisect_left(node.keys, key)
            if index >= len(node.keys) or node.keys[index] != key:
                return False
            if value is None:
                self._size -= len(node.values[index])
                del node.keys[index]
                del node.values[index]
            else:
                try:
                    node.values[index].remove(value)
                except ValueError:
                    return False
                self._size -= 1
                if not node.values[index]:
                    del node.keys[index]
                    del node.values[index]
            return True
        index = bisect_right(node.keys, key)
        child = node.children[index]
        removed = self._remove(child, key, value)
        if removed:
            minimum = self.order // 2
            if len(child.keys) < minimum // 2:
                self._rebalance(node, index)
        return removed

    def _rebalance(self, parent: _Node, index: int) -> None:
        child = parent.children[index]
        left = parent.children[index - 1] if index > 0 else None
        right = parent.children[index + 1] if index + 1 < len(parent.children) else None
        minimum = max(1, self.order // 4)

        if left is not None and len(left.keys) > minimum:
            # borrow from left sibling
            if child.is_leaf:
                child.keys.insert(0, left.keys.pop())
                child.values.insert(0, left.values.pop())
                parent.keys[index - 1] = child.keys[0]
            else:
                child.keys.insert(0, parent.keys[index - 1])
                parent.keys[index - 1] = left.keys.pop()
                child.children.insert(0, left.children.pop())
            return
        if right is not None and len(right.keys) > minimum:
            # borrow from right sibling
            if child.is_leaf:
                child.keys.append(right.keys.pop(0))
                child.values.append(right.values.pop(0))
                parent.keys[index] = right.keys[0]
            else:
                child.keys.append(parent.keys[index])
                parent.keys[index] = right.keys.pop(0)
                child.children.append(right.children.pop(0))
            return
        # merge with a sibling
        if left is not None:
            self._merge(parent, index - 1)
        elif right is not None:
            self._merge(parent, index)

    def _merge(self, parent: _Node, index: int) -> None:
        left = parent.children[index]
        right = parent.children[index + 1]
        if left.is_leaf:
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next_leaf = right.next_leaf
        else:
            left.keys.append(parent.keys[index])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        del parent.keys[index]
        del parent.children[index + 1]

    # -- statistics --------------------------------------------------------------

    def height(self) -> int:
        height = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            height += 1
        return height

    def size_bytes(self) -> int:
        """Approximate memory/disk footprint for size accounting."""
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            total += 16  # node header
            total += 8 * len(node.keys)
            if node.is_leaf:
                total += sum(8 * len(v) for v in node.values)
            else:
                total += 8 * len(node.children)
                stack.extend(node.children)
        return total
