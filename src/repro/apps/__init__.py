"""PIM applications on top of the iMeMex platform.

The paper closes with: "we are planning to explore PIM applications
such as reference reconciliation and clustering on top of the iMeMex
platform." This package implements both:

* :mod:`reconciliation` — entity resolution over name-like strings
  (email senders, author fields): "Jens Dittrich <jens@ethz.ch>",
  "Dittrich, Jens" and "J. Dittrich" end up in one cluster;
* :mod:`clustering` — grouping views by content similarity using the
  full-text index's term statistics.
"""

from .clustering import cluster_by_content
from .reconciliation import normalize_person, reconcile_names, reconcile_views

__all__ = [
    "cluster_by_content", "normalize_person", "reconcile_names",
    "reconcile_views",
]
