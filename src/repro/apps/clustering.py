"""Content clustering over the dataspace.

Groups views whose content components are lexically similar — the
"clustering" half of the paper's closing PIM-applications outlook.

The algorithm is greedy centroid clustering over TF-IDF vectors built
from the content index's term statistics: views are processed in a
deterministic order; each joins the first cluster whose centroid is
within the similarity threshold, else founds a new cluster. Simple,
deterministic, and good enough to pull together drafts of the same
document — the dominant duplication pattern in personal data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable

from ..rvm.manager import ResourceViewManager


def _tfidf_vector(rvm: ResourceViewManager, uri: str) -> dict[str, float]:
    index = rvm.indexes.content_index
    doc = index.doc_of(uri)
    if doc is None:
        return {}
    doc_count = max(1, index.document_count)
    vector: dict[str, float] = {}
    # reconstruct the document's term frequencies from the postings
    for term in index.terms_matching(lambda t: True):
        postings = index.postings(term)
        posting = postings.get(doc) if postings else None
        if posting is None:
            continue
        idf = 1.0 + math.log(doc_count / (1 + postings.document_frequency))
        vector[term] = posting.term_frequency * idf
    norm = math.sqrt(sum(v * v for v in vector.values()))
    if norm > 0:
        vector = {t: v / norm for t, v in vector.items()}
    return vector


def _cosine(a: dict[str, float], b: dict[str, float]) -> float:
    if len(b) < len(a):
        a, b = b, a
    return sum(value * b.get(term, 0.0) for term, value in a.items())


@dataclass
class _Cluster:
    members: list[str] = field(default_factory=list)
    centroid: dict[str, float] = field(default_factory=dict)

    def add(self, uri: str, vector: dict[str, float]) -> None:
        self.members.append(uri)
        size = len(self.members)
        terms = set(self.centroid) | set(vector)
        self.centroid = {
            term: ((self.centroid.get(term, 0.0) * (size - 1)
                    + vector.get(term, 0.0)) / size)
            for term in terms
        }


def cluster_by_content(rvm: ResourceViewManager,
                       uris: Iterable[str] | None = None, *,
                       threshold: float = 0.6,
                       min_cluster_size: int = 1) -> list[list[str]]:
    """Cluster views by content similarity.

    ``uris`` defaults to every content-indexed view. Returns clusters
    (lists of URIs) with at least ``min_cluster_size`` members, largest
    first. ``threshold`` is the cosine similarity a view must reach to
    join an existing cluster — higher means tighter clusters.
    """
    if uris is None:
        candidates = sorted(rvm.indexes.content_index.keys())
    else:
        candidates = sorted(set(uris))
    clusters: list[_Cluster] = []
    for uri in candidates:
        vector = _tfidf_vector(rvm, uri)
        if not vector:
            continue
        best: _Cluster | None = None
        best_score = threshold
        for cluster in clusters:
            score = _cosine(vector, cluster.centroid)
            if score >= best_score:
                best, best_score = cluster, score
        if best is None:
            best = _Cluster()
            clusters.append(best)
        best.add(uri, vector)
    out = [c.members for c in clusters if len(c.members) >= min_cluster_size]
    out.sort(key=lambda members: (-len(members), members[0]))
    return out
