"""Reference reconciliation: which mentions denote the same entity?

Personal dataspaces are full of co-referring strings — the same person
appears as an email sender, a LaTeX author and a folder name, spelled
differently each time. Reconciliation (the paper cites Dong et al. [18])
clusters such mentions.

The algorithm here is the classic lightweight pipeline:

1. **normalize** each mention (strip email addressing syntax,
   lowercase, drop punctuation, undo "Last, First" inversion);
2. **block** by shared surname token so only plausible pairs compare;
3. **match** pairs whose token sets are compatible — equal tokens,
   subset (middle names dropped), or initial-expansion ("j" ~ "jens");
4. **cluster** with union-find over the match edges.

Deterministic, dependency-free, and honest about its scope: it
reconciles *name strings*, which is what the dataspace's tuple
components actually carry.
"""

from __future__ import annotations

import re
from collections import defaultdict
from typing import Iterable

from ..rvm.manager import ResourceViewManager

_EMAIL_RE = re.compile(r"<[^>]*>|\(([^)]*)\)")
_NON_ALPHA = re.compile(r"[^a-z\s]")


def normalize_person(mention: str) -> tuple[str, ...]:
    """Normalize one mention to an ordered token tuple.

    Handles ``Name <addr>``, ``Last, First``, dotted initials and
    plain addresses (``first.last@host`` → tokens from the local part).
    """
    text = mention.strip()
    if "@" in text and "<" not in text:
        # a bare address: the local part is the best name signal
        local = text.split("@", 1)[0]
        text = local.replace(".", " ").replace("_", " ")
    text = _EMAIL_RE.sub(" ", text)
    if "," in text:
        last, _, first = text.partition(",")
        text = f"{first} {last}"
    text = text.lower().replace(".", " ")
    text = _NON_ALPHA.sub(" ", text)
    return tuple(token for token in text.split() if token)


def _tokens_compatible(a: tuple[str, ...], b: tuple[str, ...]) -> bool:
    """Do two normalized mentions plausibly denote the same person?

    Requires a shared surname (last token) and, for the remaining
    tokens, either subset containment or initial-expansion matches.
    """
    if not a or not b:
        return False
    if a[-1] != b[-1]:
        return False
    rest_a, rest_b = a[:-1], b[:-1]
    if not rest_a or not rest_b:
        return True  # "dittrich" matches "jens dittrich"
    shorter, longer = sorted((rest_a, rest_b), key=len)
    used = [False] * len(longer)
    for token in shorter:
        for index, candidate in enumerate(longer):
            if used[index]:
                continue
            if (token == candidate
                    or (len(token) == 1 and candidate.startswith(token))
                    or (len(candidate) == 1 and token.startswith(candidate))):
                used[index] = True
                break
        else:
            return False
    return True


class _UnionFind:
    def __init__(self, size: int):
        self.parent = list(range(size))

    def find(self, index: int) -> int:
        while self.parent[index] != index:
            self.parent[index] = self.parent[self.parent[index]]
            index = self.parent[index]
        return index

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def reconcile_names(mentions: Iterable[str]) -> list[list[str]]:
    """Cluster co-referring mentions; returns clusters of the original
    strings, largest first (ties by first member)."""
    originals = list(mentions)
    normalized = [normalize_person(m) for m in originals]
    uf = _UnionFind(len(originals))

    blocks: dict[str, list[int]] = defaultdict(list)
    for index, tokens in enumerate(normalized):
        if tokens:
            blocks[tokens[-1]].append(index)

    for members in blocks.values():
        for position, a in enumerate(members):
            for b in members[position + 1:]:
                if _tokens_compatible(normalized[a], normalized[b]):
                    uf.union(a, b)

    clusters: dict[int, list[str]] = defaultdict(list)
    for index, original in enumerate(originals):
        clusters[uf.find(index)].append(original)
    out = sorted(clusters.values(), key=lambda c: (-len(c), c[0]))
    return out


def reconcile_views(rvm: ResourceViewManager, *,
                    attributes: tuple[str, ...] = ("from", "to"),
                    ) -> list[list[tuple[str, str]]]:
    """Reconcile person mentions found in tuple components.

    Scans the tuple replica for the given attributes, clusters the
    mention strings, and returns clusters of ``(mention, view uri)``
    pairs (only clusters with at least two distinct mentions — the
    interesting reconciliations).
    """
    occurrences: list[tuple[str, str]] = []
    for uri in rvm.indexes.tuple_index.all_keys():
        component = rvm.indexes.tuple_index.tuple_of(uri)
        if component is None or component.is_empty:
            continue
        for attribute in attributes:
            value = component.get(attribute)
            if isinstance(value, str) and value:
                # split address *lists* on commas, but leave single
                # "Last, First" mentions intact — a list has one address
                # per element, so multiple '@'s signal a real list
                if value.count("@") > 1:
                    mentions = value.split(",")
                else:
                    mentions = [value]
                for mention in mentions:
                    mention = mention.strip()
                    if mention:
                        occurrences.append((mention, uri))
    clusters = reconcile_names([mention for mention, _ in occurrences])
    mention_to_cluster: dict[str, int] = {}
    for cluster_id, cluster in enumerate(clusters):
        for mention in cluster:
            mention_to_cluster.setdefault(mention, cluster_id)
    grouped: dict[int, list[tuple[str, str]]] = defaultdict(list)
    for mention, uri in occurrences:
        grouped[mention_to_cluster[mention]].append((mention, uri))
    out = [
        sorted(set(members)) for members in grouped.values()
        if len({m for m, _ in members}) >= 2
    ]
    out.sort(key=lambda c: (-len(c), c[0]))
    return out
