"""Crash recovery: latest checkpoint + WAL tail → a live RVM.

Recovery is the inverse of the logging path: load the newest complete
checkpoint snapshot (if any) into a fresh
:class:`~repro.rvm.manager.ResourceViewManager`, then replay every WAL
commit unit past the checkpoint's LSN through the typed records'
``apply`` methods. Because each record re-issues the exact structure
call the live path made, the recovered RVM equals the pre-crash RVM up
to the last durable WAL frame — the crash-recovery suite pins this by
checking the batched query engine against the set-at-a-time reference
oracle on the recovered state.

Catalog ids and every id-keyed keyset (DESIGN.md §4j) are derived
state: neither checkpoints nor WAL records carry ids. Snapshot load and
record replay go through the same catalog/index ``add`` calls as live
writes, which re-intern each URI and rebuild the keysets, so the
recovered id-space structures are exactly as queryable as before the
crash even though the id assignment itself need not be identical.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

from .. import obs
from .checkpoint import latest_checkpoint
from .records import apply_frame
from .wal import WriteAheadLog

#: Subdirectory of a durability directory holding the WAL segments.
WAL_DIRNAME = "wal"


@dataclass(frozen=True)
class RecoveryReport:
    """What one recovery pass reconstructed."""

    directory: Path
    checkpoint_lsn: int          # 0 when no checkpoint existed
    last_lsn: int                # WAL position after replay
    frames_replayed: int
    records_replayed: int
    seconds: float
    views: int                   # catalog rows after recovery

    @property
    def from_checkpoint(self) -> bool:
        return self.checkpoint_lsn > 0

    def summary(self) -> str:
        source = (f"checkpoint lsn {self.checkpoint_lsn}"
                  if self.from_checkpoint else "empty state")
        return (f"recovered {self.views} views from {source} "
                f"+ {self.frames_replayed} WAL frame(s) "
                f"({self.records_replayed} records) "
                f"in {self.seconds * 1000:.1f} ms")


def recover_state(directory: str | Path, rvm, *,
                  wal: WriteAheadLog | None = None) -> RecoveryReport:
    """Rebuild ``rvm`` (freshly constructed) from a durability directory.

    ``wal`` may be an already-open log over ``<directory>/wal`` (the
    durability manager passes its own so appends continue at the
    recovered tail); otherwise one is opened read-mostly and closed
    again. Returns the :class:`RecoveryReport`.
    """
    base = Path(directory)
    started = time.perf_counter()
    from ..rvm.persistence import load_state

    checkpoint = latest_checkpoint(base)
    checkpoint_lsn = 0
    if checkpoint is not None:
        checkpoint_lsn, snapshot_path = checkpoint
        load_state(rvm, snapshot_path)

    own_wal = wal is None
    if own_wal:
        wal = WriteAheadLog(base / WAL_DIRNAME, fsync="off")
    try:
        frames = 0
        records = 0
        for _lsn, frame in wal.replay(after_lsn=checkpoint_lsn):
            records += apply_frame(frame, rvm)
            frames += 1
        last_lsn = wal.last_lsn
    finally:
        if own_wal:
            wal.close()

    seconds = time.perf_counter() - started
    report = RecoveryReport(
        directory=base, checkpoint_lsn=checkpoint_lsn, last_lsn=last_lsn,
        frames_replayed=frames, records_replayed=records,
        seconds=seconds, views=len(rvm.catalog),
    )
    if obs.enabled():
        obs.increment("wal.recoveries")
        obs.increment("wal.records_replayed", records)
        obs.observe("wal.recovery_seconds", seconds)
        obs.emit_event(
            obs.INFO, "durability", "wal.recovered", report.summary(),
            checkpoint_lsn=checkpoint_lsn, frames=frames,
            records=records, views=report.views,
            seconds=round(seconds, 6),
        )
    return report
