"""Recovery verification: batched engine ≡ reference oracle.

After a crash recovery there is no pre-crash state left to diff
against — the crash interrupted an unknown prefix of the mutation
stream. What *can* be pinned is internal consistency: on the recovered
dataspace, the pipelined PR-4 query engine and the independent
set-at-a-time reference evaluator
(:func:`repro.query.engine.reference_execute`) must return identical
URI sets for every query of the standard generated suite. A recovery
that resurrected the catalog but tore an index (or vice versa) shows
up as a divergence between the two evaluators, because they weigh the
structures differently (the engine leans on indexes and merges, the
oracle on catalog recursion).

The suite is generated deterministically from a seed — the same
breadth of shapes the differential property harness uses (keyword
atoms, typed comparisons, multi-step paths, unions, intersections,
negations), without a hypothesis dependency at runtime.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from datetime import datetime

from ..query.ast import (
    Axis,
    CompareOp,
    Comparison,
    IntersectExpr,
    KeywordAtom,
    Literal,
    PathExpr,
    PredAnd,
    PredNot,
    PredOr,
    PredicateExpr,
    Step,
    UnionExpr,
)
from ..query.engine import reference_execute
from ..query.executor import ExecutionContext
from ..query.optimizer import optimize

_WORDS = ["database", "tuning", "vision", "section", "figure", "indexing",
          "the", "paper", "dataspace", "xyzzy", "qwxzv"]
_NAME_TESTS = ["*.tex", "*.txt", "Vision*", "?eadme", "*2005*", "notes",
               "INBOX", "papers"]
_CLASSES = ["file", "folder", "latex_section", "environment", "figure",
            "texref", "emailmessage", "no_such_class"]


def _comparison(rng: random.Random) -> Comparison:
    kind = rng.randrange(4)
    if kind == 0:
        return Comparison("size", rng.choice(list(CompareOp)),
                          Literal(rng.randrange(0, 200_000)))
    if kind == 1:
        when = datetime(rng.randrange(2000, 2026), rng.randrange(1, 13),
                        rng.randrange(1, 28))
        return Comparison("modified", rng.choice(list(CompareOp)),
                          Literal(when))
    attribute = "class" if kind == 2 else "name"
    vocabulary = _CLASSES if kind == 2 else _WORDS
    op = rng.choice([CompareOp.EQ, CompareOp.NE])
    return Comparison(attribute, op, Literal(rng.choice(vocabulary)))


def _predicate(rng: random.Random, depth: int = 0):
    if depth >= 2:
        if rng.random() < 0.5:
            return KeywordAtom(rng.choice(_WORDS), is_phrase=True)
        return _comparison(rng)
    kind = rng.choice(["atom", "cmp", "and", "or", "not"])
    if kind == "atom":
        return KeywordAtom(rng.choice(_WORDS), is_phrase=True)
    if kind == "cmp":
        return _comparison(rng)
    if kind == "not":
        return PredNot(_predicate(rng, depth + 1))
    parts = tuple(_predicate(rng, depth + 1)
                  for _ in range(rng.randrange(2, 4)))
    return PredAnd(parts) if kind == "and" else PredOr(parts)


def _path(rng: random.Random) -> PathExpr:
    steps = []
    for index in range(rng.randrange(1, 4)):
        axis = (Axis.DESCENDANT if index == 0
                else rng.choice([Axis.DESCENDANT, Axis.CHILD]))
        name = rng.choice(_NAME_TESTS) if rng.random() < 0.7 else None
        predicate = _predicate(rng) if rng.random() < 0.5 else None
        if name is None and predicate is None:
            name = rng.choice(_NAME_TESTS)
        steps.append(Step(axis, name, predicate))
    return PathExpr(tuple(steps))


def standard_queries(count: int = 40, *, seed: int = 0) -> list:
    """The deterministic generated-query suite (AST expressions)."""
    rng = random.Random(seed)
    queries = []
    for _ in range(count):
        shape = rng.randrange(4)
        if shape == 0:
            queries.append(PredicateExpr(_predicate(rng)))
        elif shape == 1:
            queries.append(_path(rng))
        elif shape == 2:
            queries.append(UnionExpr((_path(rng),
                                      PredicateExpr(_predicate(rng)))))
        else:
            queries.append(IntersectExpr((PredicateExpr(_predicate(rng)),
                                          PredicateExpr(_predicate(rng)))))
    return queries


@dataclass
class VerifyReport:
    """Engine-vs-oracle agreement over the standard suite."""

    checked: int = 0
    mismatches: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        if self.ok:
            return (f"engine ≡ reference oracle on all "
                    f"{self.checked} generated queries")
        return (f"{len(self.mismatches)}/{self.checked} generated "
                f"queries DIVERGED between engine and oracle")


def verify_engine_matches_oracle(dataspace, *, queries=None,
                                 seed: int = 0,
                                 count: int = 40) -> VerifyReport:
    """Run the suite on ``dataspace``; engine and oracle must agree.

    ``dataspace`` is a :class:`~repro.facade.Dataspace` (typically one
    produced by ``Dataspace.open`` after a crash). Pass ``queries`` to
    verify a custom AST list instead of the generated suite.
    """
    if queries is None:
        queries = standard_queries(count, seed=seed)
    processor = dataspace.processor
    rvm = dataspace.rvm
    report = VerifyReport()
    for query in queries:
        plan = optimize(processor._build(query))  # noqa: SLF001 - internal harness
        engine = plan.execute(ExecutionContext(rvm, processor.functions))
        oracle = reference_execute(
            plan, ExecutionContext(rvm, processor.functions)
        )
        report.checked += 1
        if engine != oracle:
            report.mismatches.append(
                (query, sorted(engine ^ oracle)[:10])
            )
    return report
