"""Checkpoints: snapshot the RVM and truncate the applied WAL prefix.

A checkpoint is a :func:`repro.rvm.persistence.save_state` snapshot
(the same crash-safe directory format ``Dataspace.save`` writes) taken
at a known WAL position, plus a tiny atomically-updated pointer file
naming the checkpoint recovery should start from.

The protocol, in crash-safe order:

1. fsync the WAL — every record at or below the checkpoint LSN is on
   stable storage before the snapshot claims to cover it;
2. write the snapshot to ``checkpoint-<lsn>/`` (staged + atomic rename
   inside ``save_state``), recording ``wal_lsn`` in its manifest;
3. atomically rewrite the ``CHECKPOINT`` pointer file;
4. truncate WAL segments fully covered by the snapshot and
   garbage-collect superseded checkpoint directories.

A crash between any two steps recovers from the *previous* checkpoint
plus the still-untruncated WAL — never from a half-written one.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path

from .. import obs
from ..core.errors import DurabilityError
from ..rvm.persistence import save_state
from .wal import WriteAheadLog

#: The pointer file naming the live checkpoint's LSN.
POINTER_NAME = "CHECKPOINT"

CHECKPOINT_PREFIX = "checkpoint-"


def checkpoint_path(directory: Path, lsn: int) -> Path:
    return Path(directory) / f"{CHECKPOINT_PREFIX}{lsn:020d}"


def latest_checkpoint(directory: str | Path) -> tuple[int, Path] | None:
    """The (lsn, path) of the checkpoint recovery should load, if any.

    The pointer file is authoritative; when it is missing (or names a
    checkpoint that no longer exists), fall back to the newest complete
    checkpoint directory on disk — a crash between snapshot and pointer
    update leaves exactly that state.
    """
    base = Path(directory)
    pointer = base / POINTER_NAME
    if pointer.exists():
        try:
            lsn = int(pointer.read_text().strip())
        except ValueError:
            raise DurabilityError(
                f"unreadable checkpoint pointer at {pointer}"
            ) from None
        path = checkpoint_path(base, lsn)
        if (path / "manifest.json").exists():
            return lsn, path
    best: tuple[int, Path] | None = None
    for entry in base.glob(f"{CHECKPOINT_PREFIX}*"):
        suffix = entry.name[len(CHECKPOINT_PREFIX):]
        if not suffix.isdigit() or not (entry / "manifest.json").exists():
            continue
        lsn = int(suffix)
        if best is None or lsn > best[0]:
            best = (lsn, entry)
    return best


def _write_pointer(directory: Path, lsn: int) -> None:
    pointer = directory / POINTER_NAME
    staging = directory / f"{POINTER_NAME}.tmp-{os.getpid()}"
    with staging.open("w", encoding="utf-8") as handle:
        handle.write(f"{lsn}\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(staging, pointer)


@dataclass(frozen=True)
class CheckpointInfo:
    """What one checkpoint pass did."""

    lsn: int
    path: Path
    seconds: float
    segments_truncated: int
    manifest: dict


class Checkpointer:
    """Takes checkpoints of one RVM into one durability directory."""

    def __init__(self, directory: str | Path, *, keep: int = 2):
        self.directory = Path(directory)
        #: completed checkpoints retained (≥ 1; older ones are GC'd)
        self.keep = max(1, keep)

    def checkpoint(self, rvm, wal: WriteAheadLog) -> CheckpointInfo:
        """One full checkpoint pass (see the module protocol)."""
        started = time.perf_counter()
        lsn = wal.last_lsn
        wal.sync()                                    # step 1
        target = checkpoint_path(self.directory, lsn)
        manifest = save_state(rvm, target, extra={"wal_lsn": lsn})  # step 2
        _write_pointer(self.directory, lsn)           # step 3
        truncated = wal.truncate_through(lsn)         # step 4
        self._collect_garbage(live_lsn=lsn)
        seconds = time.perf_counter() - started
        if obs.enabled():
            obs.increment("wal.checkpoints")
            obs.observe("wal.checkpoint_seconds", seconds)
            obs.emit_event(
                obs.INFO, "durability", "wal.checkpoint",
                f"checkpoint at lsn {lsn}: "
                f"{manifest['counts']['catalog']} catalog rows, "
                f"{truncated} segment(s) truncated",
                lsn=lsn, seconds=round(seconds, 6), truncated=truncated,
            )
        return CheckpointInfo(lsn=lsn, path=target, seconds=seconds,
                              segments_truncated=truncated,
                              manifest=manifest)

    def _collect_garbage(self, *, live_lsn: int) -> None:
        import shutil
        checkpoints = []
        for entry in self.directory.glob(f"{CHECKPOINT_PREFIX}*"):
            suffix = entry.name[len(CHECKPOINT_PREFIX):]
            if suffix.isdigit():
                checkpoints.append((int(suffix), entry))
        checkpoints.sort(reverse=True)
        for lsn, entry in checkpoints[self.keep:]:
            if lsn != live_lsn:
                shutil.rmtree(entry, ignore_errors=True)
