"""``repro.durability`` — WAL, checkpoints, and crash recovery.

The original iMeMex prototype kept its catalog in Derby and its
full-text indexes in Lucene, both durable; this reproduction was
"WAL-free" — every process rebuilt the catalog and all four
index/replica structures from scratch. This subsystem closes that gap
with the classic recipe:

* a segmented, CRC-framed **write-ahead log** (:mod:`.wal`) with a
  configurable fsync policy and torn-tail truncation on open;
* **typed log records** (:mod:`.records`) for every catalog /
  name-index / fulltext / tuple-index / group-replica mutation,
  captured at the synchronization manager's mutation points;
* a **checkpointer** (:mod:`.checkpoint`) reusing
  :func:`repro.rvm.persistence.save_state` as its snapshot format and
  truncating the applied WAL prefix;
* a **recovery path** (:mod:`.recovery`) loading the latest snapshot
  and replaying the WAL tail into a fresh RVM;
* a **verification harness** (:mod:`.verify`) pinning recovered state
  by checking the batched engine against the reference oracle.

The facade surfaces it as ``Dataspace(durability=...)`` /
``Dataspace.open(path)``; the CLI as ``repro checkpoint`` and
``repro recover --verify``; telemetry as the ``wal.*`` metric family.
"""

from .checkpoint import Checkpointer, CheckpointInfo, latest_checkpoint
from .manager import (
    DurabilityConfig,
    DurabilityManager,
    load_config,
    policy_from_config,
)
from .records import (
    CatalogUpsert,
    ContentIndexPut,
    GroupReplicaPut,
    NameIndexPut,
    TupleIndexPut,
    ViewDelete,
    apply_frame,
    capture_view_delete,
    capture_view_upsert,
    decode_record,
)
from .recovery import WAL_DIRNAME, RecoveryReport, recover_state
from .verify import (
    VerifyReport,
    standard_queries,
    verify_engine_matches_oracle,
)
from .wal import FSYNC_POLICIES, WriteAheadLog

__all__ = [
    "CatalogUpsert", "Checkpointer", "CheckpointInfo", "ContentIndexPut",
    "DurabilityConfig", "DurabilityManager", "FSYNC_POLICIES",
    "GroupReplicaPut", "NameIndexPut", "RecoveryReport", "TupleIndexPut",
    "VerifyReport", "ViewDelete", "WAL_DIRNAME", "WriteAheadLog",
    "apply_frame", "capture_view_delete", "capture_view_upsert",
    "decode_record", "latest_checkpoint", "load_config",
    "policy_from_config", "recover_state", "standard_queries",
    "verify_engine_matches_oracle",
]
