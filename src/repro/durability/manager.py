"""The durability manager: one dataspace's WAL + checkpoint lifecycle.

:class:`DurabilityManager` owns a durability *directory*::

    <directory>/
        config.json                # indexing-policy flags, format version
        wal/00000000000000000001.wal ...
        checkpoint-<lsn>/          # save_state snapshots
        CHECKPOINT                 # pointer: which checkpoint is live

and plugs into the RVM as the synchronization manager's durability
sink: every view the sync path indexes or unregisters is captured as
typed records (:mod:`.records`) and appended to the WAL as one commit
unit *after* the in-memory mutation completed — the structures are the
source of truth, the log is their replayable history.

``config.json`` pins the :class:`~repro.rvm.indexes.IndexingPolicy`
the log was written under: WAL replay re-runs the indexing dispatch,
so recovery must construct the RVM with the same policy —
:func:`load_config` / ``Dataspace.open`` restore it automatically.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from ..core.errors import DurabilityError
from ..core.resource_view import ResourceView
from ..rvm.indexes import IndexingPolicy
from .checkpoint import Checkpointer, CheckpointInfo
from .records import capture_view_delete, capture_view_upsert
from .recovery import WAL_DIRNAME, RecoveryReport, recover_state
from .wal import WriteAheadLog

CONFIG_NAME = "config.json"
CONFIG_VERSION = 1

_POLICY_FLAGS = ("index_names", "index_content", "index_tuples",
                 "replicate_groups", "index_media")


@dataclass(frozen=True)
class DurabilityConfig:
    """How a dataspace's mutations are made durable."""

    #: the durability directory (created on first use)
    directory: str | Path = ""
    #: fsync policy: "always" | "interval" | "off"
    fsync: str = "interval"
    #: max staleness of the durable tail under the "interval" policy
    fsync_interval_seconds: float = 0.25
    #: WAL segment rotation threshold
    segment_max_bytes: int = 4 * 1024 * 1024
    #: completed checkpoints retained
    checkpoint_keep: int = 2

    def with_directory(self, directory: str | Path) -> "DurabilityConfig":
        from dataclasses import replace
        return replace(self, directory=directory)


def _policy_to_dict(policy: IndexingPolicy) -> dict:
    return {flag: getattr(policy, flag) for flag in _POLICY_FLAGS}


def load_config(directory: str | Path) -> dict | None:
    """The persisted ``config.json`` of a durability directory, if any."""
    path = Path(directory) / CONFIG_NAME
    if not path.exists():
        return None
    return json.loads(path.read_text())


def policy_from_config(config: dict | None) -> IndexingPolicy | None:
    """Reconstruct the logged indexing policy (None when unrecorded)."""
    if not config or "policy" not in config:
        return None
    flags = config["policy"]
    return IndexingPolicy(**{flag: bool(flags.get(flag, True))
                             for flag in _POLICY_FLAGS})


class DurabilityManager:
    """Wires one RVM's mutation stream into a WAL + checkpoints."""

    def __init__(self, rvm, config: DurabilityConfig):
        if not config.directory:
            raise DurabilityError(
                "DurabilityConfig.directory must name the durability "
                "directory"
            )
        self.rvm = rvm
        self.config = config
        self.directory = Path(config.directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._check_or_write_config()
        self.wal = WriteAheadLog(
            self.directory / WAL_DIRNAME,
            segment_max_bytes=config.segment_max_bytes,
            fsync=config.fsync,
            fsync_interval_seconds=config.fsync_interval_seconds,
        )
        self.checkpointer = Checkpointer(self.directory,
                                         keep=config.checkpoint_keep)
        rvm.attach_durability(self)

    def _check_or_write_config(self) -> None:
        persisted = load_config(self.directory)
        mine = _policy_to_dict(self.rvm.indexes.policy)
        if persisted is None:
            staging = self.directory / f"{CONFIG_NAME}.tmp-{os.getpid()}"
            staging.write_text(json.dumps(
                {"config_version": CONFIG_VERSION, "policy": mine},
                indent=2,
            ))
            os.replace(staging, self.directory / CONFIG_NAME)
            return
        theirs = persisted.get("policy")
        if theirs is not None and theirs != mine:
            raise DurabilityError(
                f"durability directory {self.directory} was written under "
                f"indexing policy {theirs}, but this RVM uses {mine}; "
                f"replaying the log under a different policy would "
                f"diverge — open with the recorded policy"
            )

    # -- the sync manager's durability sink --------------------------------

    def record_upsert(self, view: ResourceView,
                      raw_content: str | None) -> None:
        """Log one just-indexed view (called after the mutation)."""
        records = capture_view_upsert(view, self.rvm, raw_content)
        if records:
            self.wal.append(records)

    def record_remove(self, uri: str) -> None:
        """Log one just-unregistered view."""
        self.wal.append(capture_view_delete(uri))

    # -- checkpoints & recovery --------------------------------------------

    def checkpoint(self) -> CheckpointInfo:
        """Snapshot the RVM and truncate the applied WAL prefix."""
        return self.checkpointer.checkpoint(self.rvm, self.wal)

    def recover_into(self, rvm) -> RecoveryReport:
        """Replay this directory's state into a fresh RVM.

        Uses the manager's own open WAL, so subsequent mutations append
        at the recovered tail.
        """
        return recover_state(self.directory, rvm, wal=self.wal)

    # -- lifecycle ----------------------------------------------------------

    def sync(self) -> None:
        """Force the WAL tail to stable storage now."""
        self.wal.sync()

    def close(self) -> None:
        self.wal.close()

    def __enter__(self) -> "DurabilityManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
