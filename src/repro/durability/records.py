"""Typed WAL records for every catalog/index/replica mutation.

Each record captures the *post-state* of one structure for one view —
not the operation's inputs — so replay is deterministic regardless of
how lazily the live path computed its components. A record's ``apply``
re-issues the mutation through the same structure call the live path
used (``catalog.register``, ``name_index.add``, ``tuple_index.add``,
``IndexSet.index_content_raw``, ``group_replica.add_group``), so the
replayed RVM is byte-for-byte the state the live RVM held after the
logged mutation, including re-add-replaces semantics and net-input
accounting.

One logical mutation (indexing one resource view) emits one record per
structure the indexing policy touched; the capture helpers bundle them
into a single list, which the WAL frames as one commit unit — recovery
applies the whole view or none of it.

Wire format: plain JSON dicts tagged with ``"t"``::

    {"t": "cat",  "uri": ..., "name": ..., "class": ..., "kind": ...,
     "size": ..., "children": ...}
    {"t": "name", "uri": ..., "name": ...}
    {"t": "tup",  "uri": ..., "values": {...}}          # ISO-tagged dts
    {"t": "txt",  "uri": ..., "raw": ...}
    {"t": "grp",  "uri": ..., "set": [...], "seq": [...]}
    {"t": "del",  "uri": ...}
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar

from ..core.components import GroupComponent, TupleComponent, ViewSequence
from ..core.errors import DurabilityError
from ..core.identity import ViewId
from ..core.resource_view import ResourceView
from ..rvm.persistence import StubView, decode_value, encode_value

if TYPE_CHECKING:  # pragma: no cover
    from ..rvm.manager import ResourceViewManager


@dataclass(frozen=True, slots=True)
class CatalogUpsert:
    """One row registered (or re-registered) in the RV catalog."""

    TAG: ClassVar[str] = "cat"

    uri: str
    name: str
    class_name: str
    kind: str
    size: int
    child_count: int

    def payload(self) -> dict:
        return {"t": self.TAG, "uri": self.uri, "name": self.name,
                "class": self.class_name, "kind": self.kind,
                "size": self.size, "children": self.child_count}

    @classmethod
    def from_payload(cls, payload: dict) -> "CatalogUpsert":
        return cls(uri=payload["uri"], name=payload["name"],
                   class_name=payload["class"], kind=payload["kind"],
                   size=payload["size"], child_count=payload["children"])

    def apply(self, rvm: "ResourceViewManager") -> None:
        stub = ResourceView(self.name, class_name=self.class_name or None,
                            view_id=ViewId.parse(self.uri))
        rvm.catalog.register(stub, kind=self.kind, size=self.size,
                             child_count=self.child_count)


@dataclass(frozen=True, slots=True)
class NameIndexPut:
    """One name component (re)indexed in the Name Index & Replica."""

    TAG: ClassVar[str] = "name"

    uri: str
    name: str

    def payload(self) -> dict:
        return {"t": self.TAG, "uri": self.uri, "name": self.name}

    @classmethod
    def from_payload(cls, payload: dict) -> "NameIndexPut":
        return cls(uri=payload["uri"], name=payload["name"])

    def apply(self, rvm: "ResourceViewManager") -> None:
        rvm.indexes.name_index.add(self.uri, self.name)


@dataclass(frozen=True, slots=True)
class TupleIndexPut:
    """One tuple component (re)replicated in the Tuple Index & Replica."""

    TAG: ClassVar[str] = "tup"

    uri: str
    values: dict

    def payload(self) -> dict:
        return {"t": self.TAG, "uri": self.uri,
                "values": {k: encode_value(v)
                           for k, v in self.values.items()}}

    @classmethod
    def from_payload(cls, payload: dict) -> "TupleIndexPut":
        return cls(uri=payload["uri"],
                   values={k: decode_value(v)
                           for k, v in payload["values"].items()})

    def apply(self, rvm: "ResourceViewManager") -> None:
        component = (TupleComponent.from_dict(self.values) if self.values
                     else TupleComponent.empty())
        rvm.indexes.tuple_index.add(self.uri, component)


@dataclass(frozen=True, slots=True)
class ContentIndexPut:
    """One view's raw content text, as examined by the content path.

    The content index stores postings, not text, so the raw text must
    travel in the log; replay re-tokenizes it through
    :meth:`~repro.rvm.indexes.IndexSet.index_content_raw`, which also
    redoes the text-vs-media dispatch and net-input accounting.
    """

    TAG: ClassVar[str] = "txt"

    uri: str
    raw: str

    def payload(self) -> dict:
        return {"t": self.TAG, "uri": self.uri, "raw": self.raw}

    @classmethod
    def from_payload(cls, payload: dict) -> "ContentIndexPut":
        return cls(uri=payload["uri"], raw=payload["raw"])

    def apply(self, rvm: "ResourceViewManager") -> None:
        rvm.indexes.index_content_raw(self.uri, self.raw)


@dataclass(frozen=True, slots=True)
class GroupReplicaPut:
    """One group component (re)replicated in the Group Replica."""

    TAG: ClassVar[str] = "grp"

    uri: str
    set_part: tuple
    seq_part: tuple

    def payload(self) -> dict:
        return {"t": self.TAG, "uri": self.uri,
                "set": list(self.set_part), "seq": list(self.seq_part)}

    @classmethod
    def from_payload(cls, payload: dict) -> "GroupReplicaPut":
        return cls(uri=payload["uri"], set_part=tuple(payload["set"]),
                   seq_part=tuple(payload["seq"]))

    def apply(self, rvm: "ResourceViewManager") -> None:
        group = GroupComponent(
            set_part=ViewSequence([StubView(u) for u in self.set_part]),
            seq_part=ViewSequence([StubView(u) for u in self.seq_part]),
        )
        rvm.indexes.group_replica.add_group(ViewId.parse(self.uri), group)


@dataclass(frozen=True, slots=True)
class ViewDelete:
    """One view unregistered from the catalog and every structure."""

    TAG: ClassVar[str] = "del"

    uri: str

    def payload(self) -> dict:
        return {"t": self.TAG, "uri": self.uri}

    @classmethod
    def from_payload(cls, payload: dict) -> "ViewDelete":
        return cls(uri=payload["uri"])

    def apply(self, rvm: "ResourceViewManager") -> None:
        rvm.catalog.unregister(self.uri)
        rvm.indexes.remove_view(self.uri)


RECORD_TYPES = {record.TAG: record for record in (
    CatalogUpsert, NameIndexPut, TupleIndexPut, ContentIndexPut,
    GroupReplicaPut, ViewDelete,
)}


def decode_record(payload: dict):
    """One wire dict back into its typed record."""
    try:
        record_type = RECORD_TYPES[payload["t"]]
    except KeyError:
        raise DurabilityError(
            f"unknown WAL record type {payload.get('t')!r}"
        ) from None
    return record_type.from_payload(payload)


def apply_frame(frame: dict, rvm: "ResourceViewManager") -> int:
    """Apply one WAL commit unit (``{"r": [...]}``); returns records applied."""
    payloads = frame.get("r", ())
    for payload in payloads:
        decode_record(payload).apply(rvm)
    return len(payloads)


# ---------------------------------------------------------------------------
# capture (live-mutation → records)
# ---------------------------------------------------------------------------

def capture_view_upsert(view: ResourceView, rvm: "ResourceViewManager",
                        raw_content: str | None) -> list[dict]:
    """The records for one just-indexed view, read back from the RVM.

    Called at the synchronization manager's mutation point, *after* the
    catalog insert and component indexing, so every value is the state
    the structures actually hold (the group replica's own windowing of
    infinite groups included). ``raw_content`` is what
    :meth:`IndexSet.add_view` returned — single-shot content streams
    cannot be re-read, so the text is handed over rather than re-forced.
    """
    uri = view.view_id.uri
    records: list[dict] = []
    catalog_record = rvm.catalog.get(uri)
    if catalog_record is not None:
        records.append(CatalogUpsert(
            uri=uri, name=catalog_record.name,
            class_name=catalog_record.class_name,
            kind=catalog_record.kind, size=catalog_record.size,
            child_count=catalog_record.child_count,
        ).payload())
    indexes = rvm.indexes
    policy = indexes.policy
    if policy.index_names and uri in indexes.name_index:
        records.append(NameIndexPut(
            uri=uri, name=indexes.name_index.stored_text(uri),
        ).payload())
    if policy.index_tuples:
        component = indexes.tuple_index.tuple_of(uri)
        if component is not None:
            records.append(TupleIndexPut(
                uri=uri, values=component.as_dict(),
            ).payload())
    if raw_content is not None:
        records.append(ContentIndexPut(uri=uri, raw=raw_content).payload())
    if policy.replicate_groups and uri in indexes.group_replica:
        replica = indexes.group_replica
        combined = replica.children(uri)          # set part then seq part
        sequence = replica.sequence_children(uri)
        set_part = combined[:len(combined) - len(sequence)]
        records.append(GroupReplicaPut(
            uri=uri, set_part=set_part, seq_part=sequence,
        ).payload())
    return records


def capture_view_delete(uri: str) -> list[dict]:
    """The single-record commit unit for one unregistered view."""
    return [ViewDelete(uri=uri).payload()]
