"""The segmented write-ahead log.

The WAL is a directory of append-only segment files. Each segment is
named after the LSN of its first frame (``00000000000000000001.wal``)
and holds a sequence of CRC-framed records::

    +----------------+----------------+----------------+---------....
    | lsn   (8 B LE) | length (4 B)   | crc32  (4 B)   | payload
    +----------------+----------------+----------------+---------....

The payload is one UTF-8 JSON object ``{"r": [record, ...]}`` — a
*commit unit*: all records of one logical mutation (e.g. every
structure touched while indexing one resource view) share one frame,
so recovery applies them all or none of them. LSNs number frames,
monotonically across segments.

Durability is governed by the fsync policy:

* ``"always"`` — flush + fsync after every append (no committed frame
  is ever lost, slowest);
* ``"interval"`` — fsync at most once per ``fsync_interval_seconds``
  (bounded loss window, near-off cost);
* ``"off"`` — never fsync explicitly (the OS decides; crash loses the
  page-cache tail).

On open, the last segment is scanned frame by frame; the first frame
that is short, CRC-corrupt, or out of LSN sequence marks a *torn tail*
from a crash mid-append — everything from there on is truncated away,
and appends continue from the last intact frame. Corruption discovered
in a *non-final* segment during replay is not a torn tail (intact data
follows it) and raises :class:`~repro.core.errors.DurabilityError`.
"""

from __future__ import annotations

import json
import os
import signal
import struct
import time
import zlib
from pathlib import Path
from typing import Iterator

from .. import obs
from ..core.errors import DurabilityError

#: Frame header: lsn, payload length, crc32(payload).
FRAME_HEADER = struct.Struct("<QII")

SEGMENT_SUFFIX = ".wal"

#: Valid fsync policies.
FSYNC_POLICIES = ("always", "interval", "off")

#: Hard cap on a single frame's payload, as a corruption sanity bound:
#: a "length" beyond this is treated as a torn/corrupt frame rather
#: than attempted as an allocation.
MAX_FRAME_BYTES = 64 * 1024 * 1024


def _segment_name(first_lsn: int) -> str:
    return f"{first_lsn:020d}{SEGMENT_SUFFIX}"


def _first_lsn_of(path: Path) -> int:
    return int(path.name[: -len(SEGMENT_SUFFIX)])


class WriteAheadLog:
    """An append-only, segmented, CRC-framed log of JSON records."""

    def __init__(self, directory: str | Path, *,
                 segment_max_bytes: int = 4 * 1024 * 1024,
                 fsync: str = "interval",
                 fsync_interval_seconds: float = 0.25):
        if fsync not in FSYNC_POLICIES:
            raise DurabilityError(
                f"unknown fsync policy {fsync!r}; pick one of "
                f"{', '.join(FSYNC_POLICIES)}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_max_bytes = segment_max_bytes
        self.fsync_policy = fsync
        self.fsync_interval_seconds = fsync_interval_seconds
        #: crash-testing hook: SIGKILL this process after N appends
        #: (a real, uncatchable kill — the durability suite uses it to
        #: land a crash deterministically mid-``sync_all``).
        self.crash_after_appends: int | None = None
        self.appends = 0
        self.bytes_written = 0
        self.fsyncs = 0
        self.rotations = 0
        self._last_fsync = time.monotonic()
        self._handle = None
        self._open_tail()

    # -- opening & torn-tail repair ---------------------------------------

    def _segments(self) -> list[Path]:
        return sorted(
            p for p in self.directory.iterdir()
            if p.name.endswith(SEGMENT_SUFFIX)
            and p.name[: -len(SEGMENT_SUFFIX)].isdigit()
        )

    def _open_tail(self) -> None:
        segments = self._segments()
        if not segments:
            self._next_lsn = 1
            self._start_segment(first_lsn=1)
            return
        tail = segments[-1]
        last_good, good_bytes = self._scan_segment(tail)
        size = tail.stat().st_size
        if good_bytes < size:
            # torn tail: a crash mid-append left a partial/corrupt
            # frame — drop it so the log ends on a committed frame
            with tail.open("r+b") as handle:
                handle.truncate(good_bytes)
                handle.flush()
                os.fsync(handle.fileno())
            if obs.enabled():
                obs.increment("wal.torn_tail_truncations")
                obs.emit_event(
                    obs.WARNING, "durability", "wal.torn_tail",
                    f"truncated torn tail of {tail.name}: "
                    f"{size - good_bytes} byte(s) dropped",
                    segment=tail.name, dropped=size - good_bytes,
                )
        self._next_lsn = (last_good + 1 if last_good
                          else _first_lsn_of(tail))
        self._segment_path = tail
        self._handle = tail.open("ab")

    def _scan_segment(self, path: Path) -> tuple[int, int]:
        """Validate ``path`` frame by frame.

        Returns ``(last_good_lsn, good_bytes)`` — the LSN of the last
        intact frame (0 when none) and the byte offset it ends at.
        """
        expected = _first_lsn_of(path)
        last_good = 0
        good_bytes = 0
        with path.open("rb") as handle:
            while True:
                frame = self._read_frame(handle, expected)
                if frame is None:
                    break
                lsn, _payload, end = frame
                last_good = lsn
                good_bytes = end
                expected = lsn + 1
        return last_good, good_bytes

    @staticmethod
    def _read_frame(handle, expected_lsn: int):
        """Read one frame; None on EOF, torn tail, or corruption."""
        header = handle.read(FRAME_HEADER.size)
        if len(header) < FRAME_HEADER.size:
            return None
        lsn, length, crc = FRAME_HEADER.unpack(header)
        if lsn != expected_lsn or length > MAX_FRAME_BYTES:
            return None
        payload = handle.read(length)
        if len(payload) < length or zlib.crc32(payload) != crc:
            return None
        return lsn, payload, handle.tell()

    def _start_segment(self, *, first_lsn: int) -> None:
        if self._handle is not None:
            self._flush(force=True)
            self._handle.close()
            self.rotations += 1
            if obs.enabled():
                obs.increment("wal.rotations")
        self._segment_path = self.directory / _segment_name(first_lsn)
        self._handle = self._segment_path.open("ab")

    # -- appending ---------------------------------------------------------

    @property
    def last_lsn(self) -> int:
        """The LSN of the last committed frame (0 when empty)."""
        return self._next_lsn - 1

    def append(self, records: list[dict]) -> int:
        """Append one commit unit; returns its LSN."""
        if self._handle is None:
            raise DurabilityError("write-ahead log is closed")
        if self._handle.tell() >= self.segment_max_bytes:
            self._start_segment(first_lsn=self._next_lsn)
        lsn = self._next_lsn
        payload = json.dumps({"r": records}, ensure_ascii=False,
                             separators=(",", ":")).encode("utf-8")
        frame = FRAME_HEADER.pack(lsn, len(payload),
                                  zlib.crc32(payload)) + payload
        self._handle.write(frame)
        self._next_lsn += 1
        self.appends += 1
        self.bytes_written += len(frame)
        self._flush()
        if obs.enabled():
            obs.increment("wal.appends")
            obs.increment("wal.bytes", len(frame))
        if (self.crash_after_appends is not None
                and self.appends >= self.crash_after_appends):
            os.kill(os.getpid(), signal.SIGKILL)  # crash-test hook
        return lsn

    def _flush(self, *, force: bool = False) -> None:
        policy = self.fsync_policy
        if policy == "off" and not force:
            return
        now = time.monotonic()
        if (not force and policy == "interval"
                and now - self._last_fsync < self.fsync_interval_seconds):
            return
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._last_fsync = now
        self.fsyncs += 1
        if obs.enabled():
            obs.increment("wal.fsyncs")

    def sync(self) -> None:
        """Force the buffered tail to stable storage now."""
        if self._handle is not None:
            self._flush(force=True)

    # -- replay ------------------------------------------------------------

    def replay(self, *, after_lsn: int = 0) -> Iterator[tuple[int, dict]]:
        """Yield ``(lsn, commit_unit)`` for every frame past ``after_lsn``.

        The commit unit is the decoded ``{"r": [...]}`` payload.
        Corruption in the final segment ends the iteration (torn tail);
        corruption with intact segments after it raises
        :class:`DurabilityError` — records provably exist beyond the
        damage, so silently dropping them would lose acknowledged data.
        """
        self.sync()
        segments = self._segments()
        for index, segment in enumerate(segments):
            is_last = index == len(segments) - 1
            next_first = (_first_lsn_of(segments[index + 1])
                          if not is_last else None)
            if next_first is not None and next_first <= after_lsn + 1:
                continue  # fully covered by the checkpoint
            expected = _first_lsn_of(segment)
            size = segment.stat().st_size
            with segment.open("rb") as handle:
                while True:
                    frame = self._read_frame(handle, expected)
                    if frame is None:
                        if not is_last and handle.tell() < size:
                            raise DurabilityError(
                                f"corrupt frame in non-final WAL segment "
                                f"{segment.name} at offset {handle.tell()}"
                            )
                        break
                    lsn, payload, _end = frame
                    expected = lsn + 1
                    if lsn <= after_lsn:
                        continue
                    yield lsn, json.loads(payload.decode("utf-8"))
            if not is_last and next_first != expected:
                raise DurabilityError(
                    f"WAL segment {segment.name} ends at lsn "
                    f"{expected - 1} but {_segment_name(next_first)} "
                    f"follows"
                )

    # -- truncation --------------------------------------------------------

    def truncate_through(self, lsn: int) -> int:
        """Delete segments whose every frame is at or below ``lsn``.

        The active tail segment always survives. Returns the number of
        segments removed.
        """
        segments = self._segments()
        removed = 0
        for index, segment in enumerate(segments[:-1]):
            next_first = _first_lsn_of(segments[index + 1])
            if next_first <= lsn + 1:
                segment.unlink()
                removed += 1
            else:
                break
        if removed and obs.enabled():
            obs.increment("wal.segments_truncated", removed)
        return removed

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self._handle is not None:
            self._flush(force=True)
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
