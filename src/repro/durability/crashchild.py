"""Crash-test child: die by SIGKILL mid-``sync_all``, deterministically.

The crash-recovery suite runs this module as a subprocess::

    python -m repro.durability.crashchild <dir> --seed 1 --kill-after 40

It builds a generated dataspace with durability into ``<dir>``
(``fsync="always"``, so every acknowledged frame is on disk), arms the
WAL's crash hook, and starts ``sync_all()``. After the configured
number of WAL appends the hook delivers a real ``SIGKILL`` to this
process — no atexit, no flush, no cleanup — leaving a torn durability
directory exactly as a power failure would. The parent test then
recovers from it and checks engine ≡ oracle on the recovered state.

Exits 0 (with ``SURVIVED`` on stdout) only if the sync finishes before
the hook fires, which the parent treats as a mis-tuned ``--kill-after``.
"""

from __future__ import annotations

import argparse
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro.durability.crashchild")
    parser.add_argument("directory", help="durability directory to tear")
    parser.add_argument("--seed", type=int, default=0,
                        help="dataset generator seed")
    parser.add_argument("--scale", type=float, default=None,
                        help="dataset scale (default: the tiny profile)")
    parser.add_argument("--kill-after", type=int, default=40,
                        help="SIGKILL this process after N WAL appends")
    args = parser.parse_args(argv)

    from ..dataset import TINY_PROFILE
    from ..facade import Dataspace
    from ..imapsim.latency import no_latency
    from .manager import DurabilityConfig

    config = DurabilityConfig(directory=args.directory, fsync="always")
    if args.scale is not None:
        dataspace = Dataspace.generate(
            scale=args.scale, seed=args.seed,
            imap_latency=no_latency(), durability=config,
        )
    else:
        dataspace = Dataspace.generate(
            profile=TINY_PROFILE, seed=args.seed,
            imap_latency=no_latency(), durability=config,
        )
    dataspace.durability.wal.crash_after_appends = args.kill_after
    dataspace.sync()          # the hook SIGKILLs us somewhere in here
    print("SURVIVED")         # pragma: no cover - only on mis-tuned N
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
