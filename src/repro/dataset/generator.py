"""The personal dataspace generator.

Builds a virtual filesystem and a simulated IMAP server (plus optional
RSS feeds) whose structure statistics follow a
:class:`~repro.dataset.profiles.DatasetProfile`, and plants the entities
the evaluation queries reference:

* Q1 ``"database"`` — a vocabulary word, so it occurs organically at a
  high rate (the paper's most frequent keyword, 941 hits);
* Q2 ``"database tuning"`` — a phrase planted at a controlled low rate;
* Q3 ``[size > 420000 and lastmodified < @12.06.2005]`` — a fixed
  number of oversized files (all timestamps fall in early 2005, so the
  date conjunct holds for them, as it did for the paper's 88 hits);
* Q4 ``//papers//*Vision/*["Franklin"]`` — exactly two ``... Vision``
  sections under ``/papers`` with "Mike Franklin" in a child paragraph;
* Q5 ``//VLDB200?//?onclusion*/*["systems"]`` — "Conclusions" sections
  with "systems" planted in a child paragraph of VLDB-year papers;
* Q6 ``union(//VLDB2005//*["documents"], //VLDB2006//*["documents"])``
  — the word "documents" planted in those papers only;
* Q7 — VLDB2006 papers carry figures wrapped in ``center`` environments
  with labels and captions ("Indexing time"), each referenced by a
  ``\\ref`` (texref name = figure label);
* Q8 — a set of ``.tex`` files that exist both under ``/papers`` and as
  email attachments with identical names;
* the Figure 1 folder-link cycle (``/Projects/PIM/All Projects`` →
  ``/Projects``).

Everything is a pure function of the profile and the seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..imapsim import Attachment, EmailMessage, ImapServer, LatencyModel
from ..rss import FeedEntry, FeedServer
from ..vfs import LogicalClock, VirtualFileSystem
from .corpus import Corpus
from .profiles import DatasetProfile

#: Fraction of generated filesystem entries that are folders.
_FOLDER_FRACTION = 0.12

_TEXT_EXTENSIONS = ("txt", "md", "log", "csv")
_BINARY_EXTENSIONS = ("jpg", "png", "mp3", "zip", "pdf")


@dataclass
class GeneratedDataspace:
    """The generated subsystems plus bookkeeping for assertions."""

    vfs: VirtualFileSystem
    imap: ImapServer
    feeds: FeedServer
    profile: DatasetProfile
    seed: int
    #: planted ground truth: query tag -> expected minimum hits
    planted: dict[str, int] = field(default_factory=dict)
    #: generated counts: files, folders, links, emails, attachments...
    counts: dict[str, int] = field(default_factory=dict)


class PersonalDataspaceGenerator:
    """Generates one personal dataspace from a profile and a seed."""

    def __init__(self, profile: DatasetProfile, *, seed: int = 42,
                 imap_latency: LatencyModel | None = None):
        self.profile = profile
        self.seed = seed
        self.corpus = Corpus(seed)
        self.rng = self.corpus.rng
        clock = LogicalClock()
        self.vfs = VirtualFileSystem(clock=clock)
        self.imap = ImapServer(
            latency=imap_latency if imap_latency is not None else LatencyModel(),
            clock=clock,
        )
        self.feeds = FeedServer()
        self.planted: dict[str, int] = {}
        self.counts: dict[str, int] = {"files": 0, "folders": 0, "links": 0,
                                       "emails": 0, "attachments": 0}
        self._paper_tex_files: list[tuple[str, str]] = []  # (name, source)

    # -- public API -----------------------------------------------------------

    def generate(self) -> GeneratedDataspace:
        self._build_skeleton()
        self._plant_conference_papers()
        self._plant_pim_project()
        self._fill_filesystem()
        self._plant_large_files()
        self._generate_email()
        self._generate_feeds()
        return GeneratedDataspace(
            vfs=self.vfs, imap=self.imap, feeds=self.feeds,
            profile=self.profile, seed=self.seed,
            planted=dict(self.planted), counts=dict(self.counts),
        )

    # -- skeleton -----------------------------------------------------------------

    _TOP_FOLDERS = (
        "/papers/VLDB2005", "/papers/VLDB2006", "/papers/SIGMOD2005",
        "/papers/CIDR2005", "/Projects/PIM", "/Projects/OLAP",
        "/Teaching", "/Admin", "/Pictures", "/Music", "/src",
    )

    def _build_skeleton(self) -> None:
        for path in self._TOP_FOLDERS:
            self.vfs.mkdir(path, parents=True)
        self.counts["folders"] += sum(p.count("/") for p in self._TOP_FOLDERS) - 3
        # recount precisely later from the vfs itself

    # -- LaTeX sources ----------------------------------------------------------------

    def _latex_paper(self, *, venue_year: str, vision_section: bool,
                     plant_documents: bool, figure_count: int,
                     conclusions_systems: bool) -> tuple[str, list[str]]:
        """One generated paper; returns (source, figure labels)."""
        corpus = self.corpus
        words_budget = self.profile.words_per_latex_doc
        lines = [
            r"\documentclass{article}",
            rf"\title{{{corpus.title()}}}",
            rf"\author{{{corpus.person_name()} and {corpus.person_name()}}}",
            r"\begin{document}",
            r"\begin{abstract}",
            corpus.paragraph(sentences=2),
            r"\end{abstract}",
        ]
        labels: list[str] = []
        figure_ordinal = 0

        def figure_block(caption_plant: str | None) -> str:
            nonlocal figure_ordinal
            figure_ordinal += 1
            label = f"fig:{venue_year.lower()}{self.rng.randrange(10_000):04d}"
            labels.append(label)
            caption = corpus.sentence(min_words=4, max_words=8)
            if caption_plant:
                caption = f"{caption_plant} {caption}"
            # wrapped in a center environment so the figure sits *inside*
            # an environment-class view (what Q7's path requires)
            return "\n".join([
                r"\begin{center}",
                r"\begin{figure}",
                rf"\caption{{{caption}}}",
                rf"\label{{{label}}}",
                r"\end{figure}",
                r"\end{center}",
            ])

        plant_docs_word = ["documents from the repository"] if plant_documents else []
        lines.append(r"\section{Introduction}")
        lines.append(rf"\label{{sec:intro{self.rng.randrange(10_000)}}}")
        lines.append(corpus.text(paragraphs=2, plant=plant_docs_word))

        if vision_section:
            lines.append(rf"\section{{The {venue_year} Vision}}")
            lines.append(corpus.paragraph(
                sentences=3, plant=["as Mike Franklin argues"]
            ))

        lines.append(r"\section{Preliminaries}")
        lines.append(corpus.text(
            paragraphs=max(1, words_budget // 200),
            plant=(["documents and folders"] if plant_documents else []),
        ))
        for index in range(figure_count):
            caption_plant = "Indexing time" if index == 0 else None
            lines.append(figure_block(caption_plant))
            lines.append(corpus.paragraph(sentences=2))

        lines.append(r"\section{Evaluation}")
        eval_text = [corpus.paragraph(sentences=3)]
        for label in labels:
            eval_text.append(rf"Results appear in Figure~\ref{{{label}}}.")
        lines.append(" ".join(eval_text))

        lines.append(r"\section{Conclusions}")
        conclusion_plant = (["powerful systems of the future"]
                            if conclusions_systems else [])
        lines.append(corpus.paragraph(sentences=3, plant=conclusion_plant))
        lines.append(r"\end{document}")
        return "\n".join(lines), labels

    def _generic_latex(self) -> str:
        """A filler LaTeX document without planted query targets."""
        corpus = self.corpus
        lines = [
            r"\documentclass{article}",
            rf"\title{{{corpus.title()}}}",
            r"\begin{document}",
        ]
        for _ in range(self.rng.randint(2, 4)):
            lines.append(rf"\section{{{corpus.title(words=3)}}}")
            lines.append(corpus.text(
                paragraphs=max(1, self.profile.words_per_latex_doc // 250)
            ))
        lines.append(r"\end{document}")
        return "\n".join(lines)

    def _generic_xml(self, *, min_entries: int = 2,
                     max_entries: int = 6) -> str:
        corpus = self.corpus
        items = []
        for _ in range(self.rng.randint(min_entries, max_entries)):
            items.append(
                f"<entry id=\"{corpus.identifier('e')}\">"
                f"<title>{corpus.title(words=3)}</title>"
                f"<body>{corpus.sentence()}</body>"
                f"</entry>"
            )
        return (f"<catalog owner=\"{corpus.person_name()}\">"
                + "".join(items) + "</catalog>")

    # -- planted content ----------------------------------------------------------------

    def _plant_conference_papers(self) -> None:
        """VLDB2005/VLDB2006 papers carrying the Q4–Q7 targets."""
        profile = self.profile
        vldb2006_papers = max(2, profile.fs_latex_docs // 20)
        vldb2005_papers = max(2, profile.fs_latex_docs // 28)

        q7_pairs = 0
        for index in range(vldb2006_papers):
            source, labels = self._latex_paper(
                venue_year="VLDB2006",
                vision_section=(index == 0),
                plant_documents=True,
                figure_count=2,
                conclusions_systems=(index == 0),
            )
            name = f"vldb2006_{index:02d}.tex"
            self.vfs.write_file(f"/papers/VLDB2006/{name}", source)
            self.counts["files"] += 1
            self._paper_tex_files.append((name, source))
            q7_pairs += len(labels)

        for index in range(vldb2005_papers):
            source, _ = self._latex_paper(
                venue_year="VLDB2005",
                vision_section=False,
                plant_documents=True,
                figure_count=1,
                conclusions_systems=(index == 0),
            )
            name = f"vldb2005_{index:02d}.tex"
            self.vfs.write_file(f"/papers/VLDB2005/{name}", source)
            self.counts["files"] += 1
            self._paper_tex_files.append((name, source))

        # second *Vision section for Q4, under a different /papers subtree
        source, _ = self._latex_paper(
            venue_year="SIGMOD2005", vision_section=True,
            plant_documents=False, figure_count=1,
            conclusions_systems=False,
        )
        self.vfs.write_file("/papers/SIGMOD2005/vision_paper.tex", source)
        self.counts["files"] += 1
        self._paper_tex_files.append(("vision_paper.tex", source))

        self.planted["q4_vision_sections"] = 2
        self.planted["q5_conclusion_sections"] = 2
        self.planted["q7_figure_refs"] = q7_pairs
        self.planted["latex_planted"] = (vldb2006_papers + vldb2005_papers + 1)

    def _plant_pim_project(self) -> None:
        """The Figure 1 scenario: the PIM project folder with the paper
        draft ("Mike Franklin" in the Introduction), a grant document,
        and the folder-link cycle."""
        corpus = self.corpus
        lines = [
            r"\documentclass{article}",
            r"\title{A Unified Data Model for Personal Dataspace Management}",
            r"\begin{document}",
            r"\section{Introduction}",
            corpus.paragraph(
                sentences=3,
                plant=["discussions with Mike Franklin about dataspaces",
                       "database tuning for the desktop"],
            ),
            r"\section{The Problem}",
            corpus.paragraph(sentences=3),
            r"\section{Preliminaries}\label{sec:prelim}",
            corpus.paragraph(sentences=2),
            r"See also Section~\ref{sec:prelim}.",
            r"\end{document}",
        ]
        self.vfs.write_file("/Projects/PIM/vldb2006.tex", "\n".join(lines))
        self.vfs.write_file(
            "/Projects/PIM/Grant.txt",
            corpus.text(paragraphs=3, plant=["database tuning grant"]),
        )
        self.vfs.make_link("/Projects/PIM/All Projects", "/Projects")
        self.counts["files"] += 2
        self.counts["links"] += 1
        self.planted["pim_intro_franklin"] = 1
        self.planted["latex_planted"] = self.planted.get("latex_planted", 0) + 1

    def _plant_large_files(self) -> None:
        """Q3's oversized files (> 420,000 bytes, early-2005 mtimes)."""
        filler = " ".join(self.corpus.words(200))
        body = (filler + "\n") * (420_000 // len(filler) + 2)
        assert len(body.encode()) > 420_000
        for index in range(self.profile.large_files):
            self.vfs.write_file(f"/Admin/archive_{index:03d}.log", body)
            self.counts["files"] += 1
        self.planted["q3_large_files"] = self.profile.large_files

    # -- bulk filesystem ---------------------------------------------------------------

    def _fill_filesystem(self) -> None:
        profile = self.profile
        remaining_latex = max(
            0, profile.fs_latex_docs - self.planted.get("latex_planted", 0)
        )
        remaining_xml = profile.fs_xml_docs
        counts = self.vfs.count_entries()
        already = counts["files"] + counts["dirs"] + counts["links"]
        budget = max(0, profile.fs_entries - already
                     - remaining_latex - remaining_xml - profile.large_files)
        folder_budget = int(budget * _FOLDER_FRACTION)
        file_budget = budget - folder_budget

        folders = list(self._TOP_FOLDERS)
        for _ in range(folder_budget):
            parent = self.rng.choice(folders)
            name = self.corpus.folder_name()
            path = f"{parent}/{name}"
            if self.vfs.exists(path):
                continue
            self.vfs.mkdir(path)
            folders.append(path)
            self.counts["folders"] += 1

        # scatter the remaining LaTeX and XML documents
        for index in range(remaining_latex):
            parent = self.rng.choice(folders)
            name = self.corpus.file_name("tex")
            if not self.vfs.exists(f"{parent}/{name}"):
                source = self._generic_latex()
                self.vfs.write_file(f"{parent}/{name}", source)
                self.counts["files"] += 1
                if index < 4:  # a few candidates for email sharing (Q8)
                    self._paper_tex_files.append((name, source))
        for _ in range(remaining_xml):
            parent = self.rng.choice(folders)
            name = self.corpus.file_name("xml")
            if not self.vfs.exists(f"{parent}/{name}"):
                # filesystem XML documents are data exports — large, in
                # line with the paper's 117,298 derived views from only
                # 47 XML documents (~2,500 views each)
                self.vfs.write_file(
                    f"{parent}/{name}",
                    self._generic_xml(min_entries=40, max_entries=160),
                )
                self.counts["files"] += 1

        # plain text and binary files
        tuning_quota = max(3, round(file_budget * 0.01))
        planted_tuning = 0
        for index in range(file_budget):
            parent = self.rng.choice(folders)
            if self.rng.random() < profile.binary_fraction:
                name = self.corpus.file_name(self.rng.choice(_BINARY_EXTENSIONS))
                content = self.corpus.binary_blob(
                    self.rng.randint(2_000, 20_000)
                )
            else:
                name = self.corpus.file_name(self.rng.choice(_TEXT_EXTENSIONS))
                plant = []
                if planted_tuning < tuning_quota and self.rng.random() < 0.05:
                    plant = ["notes on database tuning"]
                    planted_tuning += 1
                content = self.corpus.text(
                    paragraphs=max(1, profile.words_per_text_file // 60),
                    plant=plant,
                )
            path = f"{parent}/{name}"
            if not self.vfs.exists(path):
                self.vfs.write_file(path, content)
                self.counts["files"] += 1
        self.planted["q2_tuning_files"] = planted_tuning

    # -- email --------------------------------------------------------------------------

    _MAILBOXES = ("INBOX", "Sent", "Projects")

    def _generate_email(self) -> None:
        profile = self.profile
        for mailbox in self._MAILBOXES:
            if mailbox != "INBOX":
                self.imap.create_mailbox(mailbox)

        # Q8: .tex files that exist both under /papers and as email
        # attachments with identical names (draft-review threads)
        shared = self._paper_tex_files[:max(2, profile.email_latex_docs)]
        q8_pairs = 0
        for name, source in shared:
            message = self._message(
                subject=f"draft review {name}",
                body_plant=["comments on the attached database draft"],
                attachments=(Attachment(name, source, "text/x-tex"),),
            )
            self.imap.deliver("INBOX", message)
            self.counts["emails"] += 1
            self.counts["attachments"] += 1
            q8_pairs += 1
        self.planted["q8_shared_tex"] = q8_pairs

        # the OLAP project thread of the paper's Example 2: the message is
        # the project's container on the mail side (name component "OLAP"),
        # its attachment carries a figure captioned "Indexing time"; the
        # same project also has a document under /Projects/OLAP on disk.
        olap_tex, _ = self._latex_paper(
            venue_year="OLAP", vision_section=False, plant_documents=False,
            figure_count=1, conclusions_systems=False,
        )
        self.imap.deliver("Projects", self._message(
            subject="OLAP",
            body_plant=["figures attached for the OLAP project"],
            attachments=(Attachment("olap_eval.tex", olap_tex, "text/x-tex"),),
        ))
        self.counts["emails"] += 1
        self.counts["attachments"] += 1
        olap_fs_tex, _ = self._latex_paper(
            venue_year="OLAP", vision_section=False, plant_documents=False,
            figure_count=1, conclusions_systems=False,
        )
        self.vfs.write_file("/Projects/OLAP/olap_report.tex", olap_fs_tex)
        self.counts["files"] += 1
        self.planted["olap_figures"] = 2

        # XML attachments
        for index in range(profile.email_xml_docs):
            self.imap.deliver("INBOX", self._message(
                subject=f"data export {index}",
                attachments=(Attachment(
                    self.corpus.file_name("xml"), self._generic_xml(),
                    "application/xml",
                ),),
            ))
            self.counts["emails"] += 1
            self.counts["attachments"] += 1

        # remaining LaTeX attachments beyond the shared ones
        fresh_latex = max(0, profile.email_latex_docs - len(shared))
        for _ in range(fresh_latex):
            self.imap.deliver("INBOX", self._message(
                subject="lecture notes",
                attachments=(Attachment(
                    self.corpus.file_name("tex"), self._generic_latex(),
                    "text/x-tex",
                ),),
            ))
            self.counts["emails"] += 1
            self.counts["attachments"] += 1

        # bulk messages
        remaining = max(0, profile.emails - self.counts["emails"])
        tuning_quota = max(2, round(remaining * 0.005))
        planted_tuning = 0
        for index in range(remaining):
            mailbox = self.rng.choices(
                self._MAILBOXES, weights=(0.7, 0.2, 0.1)
            )[0]
            plant = []
            if planted_tuning < tuning_quota and self.rng.random() < 0.02:
                plant = ["database tuning session notes"]
                planted_tuning += 1
            self.imap.deliver(mailbox, self._message(body_plant=plant))
            self.counts["emails"] += 1
        self.planted["q2_tuning_emails"] = planted_tuning

    def _message(self, *, subject: str | None = None,
                 body_plant: list[str] | None = None,
                 attachments: tuple[Attachment, ...] = ()) -> EmailMessage:
        corpus = self.corpus
        return EmailMessage(
            subject=subject if subject is not None else corpus.title(words=3),
            sender=corpus.email_address(),
            to=(corpus.email_address(),),
            cc=(corpus.email_address(),) if self.rng.random() < 0.3 else (),
            date=self.vfs.clock.tick(),
            body=corpus.text(
                paragraphs=max(1, self.profile.words_per_email // 40),
                plant=body_plant,
            ),
            attachments=attachments,
        )

    # -- feeds ---------------------------------------------------------------------------

    def _generate_feeds(self) -> None:
        for index in range(self.profile.feeds):
            url = f"feeds.example.org/channel{index}"
            self.feeds.publish(url, self.corpus.title(words=2))
            for _ in range(self.rng.randint(3, 8)):
                self.feeds.add_entry(url, FeedEntry(
                    guid=self.corpus.identifier("guid"),
                    title=self.corpus.title(words=3),
                    description=self.corpus.sentence(),
                    published=self.vfs.clock.tick(),
                ))
