"""Dataset profiles: the published shape of the paper's dataset.

Table 2 of the paper reports, for the author's real personal dataset:

===========================  =========
files & folders (filesystem)    14,297
emails + folders + attachments   6,335
XML documents (filesystem)          47
LaTeX documents (filesystem)       282
XML documents (email)               13
LaTeX documents (email)              7
raw size                       ~4.4 GB
net text input                 ~255 MB
===========================  =========

:data:`PAPER_PROFILE` encodes those numbers; :func:`scaled_profile`
shrinks them proportionally (with floors so every query target class
stays populated) for laptop-scale benchmark runs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class DatasetProfile:
    """Target counts for the generator."""

    name: str
    #: filesystem entries (files + folders + links), Table 2 row 1
    fs_entries: int
    #: of which LaTeX documents
    fs_latex_docs: int
    #: of which XML documents
    fs_xml_docs: int
    #: email messages across all mailboxes (incl. folders + attachments
    #: in the paper's counting; we count messages and let folders and
    #: attachments add on top, as the paper's 6,335 "base items" do)
    emails: int
    #: email attachments that are LaTeX documents
    email_latex_docs: int
    #: email attachments that are XML documents
    email_xml_docs: int
    #: average words per generated text file
    words_per_text_file: int = 120
    #: average words per LaTeX document body
    words_per_latex_doc: int = 450
    #: average words per email body
    words_per_email: int = 60
    #: fraction of filesystem files that are pseudo-binary (pictures,
    #: music — content excluded from the net input size, like the
    #: paper's 4.4 GB raw vs 255 MB net gap)
    binary_fraction: float = 0.25
    #: number of oversized files planted for Q3's size predicate
    large_files: int = 88
    #: RSS feeds for the examples and stream benchmarks
    feeds: int = 2

    def scaled(self, factor: float, *, name: str | None = None,
               ) -> "DatasetProfile":
        """Scale all counts by ``factor`` with floors that keep every
        query target class populated."""
        def scale(value: int, floor: int) -> int:
            return max(floor, round(value * factor))

        return replace(
            self,
            name=name if name is not None else f"{self.name}-x{factor:g}",
            fs_entries=scale(self.fs_entries, 60),
            fs_latex_docs=scale(self.fs_latex_docs, 8),
            fs_xml_docs=scale(self.fs_xml_docs, 3),
            emails=scale(self.emails, 20),
            email_latex_docs=scale(self.email_latex_docs, 3),
            email_xml_docs=scale(self.email_xml_docs, 2),
            large_files=scale(self.large_files, 4),
        )


#: The paper's dataset shape (Table 2), full scale.
PAPER_PROFILE = DatasetProfile(
    name="paper",
    fs_entries=14_297,
    fs_latex_docs=282,
    fs_xml_docs=47,
    emails=6_335,
    email_latex_docs=7,
    email_xml_docs=13,
)

#: A minimal profile for unit/integration tests.
TINY_PROFILE = DatasetProfile(
    name="tiny",
    fs_entries=60,
    fs_latex_docs=8,
    fs_xml_docs=3,
    emails=20,
    email_latex_docs=3,
    email_xml_docs=2,
    large_files=4,
    words_per_latex_doc=150,
    words_per_text_file=40,
    words_per_email=30,
)


def scaled_profile(factor: float, *, base: DatasetProfile = PAPER_PROFILE,
                   ) -> DatasetProfile:
    """The paper profile scaled by ``factor`` (the benchmark default)."""
    return base.scaled(factor)
