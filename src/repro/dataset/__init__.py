"""The synthetic personal dataspace used by the evaluation harness.

The paper evaluates on the private files and emails of one of the
authors — data we cannot obtain. This package generates a deterministic,
seeded substitute whose *structure statistics* match the published shape
of Table 2 (file/email counts, XML/LaTeX document counts, the
derived-to-base view ratio) and which plants every entity the evaluation
queries Q1–Q8 reference, so each query exercises the same code paths and
returns stable, non-trivial counts.
"""

from .corpus import Corpus
from .generator import GeneratedDataspace, PersonalDataspaceGenerator
from .profiles import DatasetProfile, PAPER_PROFILE, TINY_PROFILE, scaled_profile

__all__ = [
    "Corpus", "GeneratedDataspace", "PersonalDataspaceGenerator",
    "DatasetProfile", "PAPER_PROFILE", "TINY_PROFILE", "scaled_profile",
]
