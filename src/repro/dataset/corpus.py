"""Deterministic text generation for the synthetic dataspace.

A small English+systems vocabulary plus a seeded RNG produce sentences,
paragraphs, titles and names. Benchmarked queries need *planted*
phrases (``"database tuning"``, ``"Mike Franklin"``, ``"Indexing
time"``); :meth:`Corpus.paragraph` can inject them at controlled rates
so result counts are non-trivial and stable across runs.
"""

from __future__ import annotations

import random

_COMMON = (
    "the a of to and in for with on at from into over about after during "
    "between without under through system data model query index search "
    "result approach user file folder document section figure table email "
    "message server client storage memory disk network graph tree node "
    "edge path structure content component view resource schema attribute "
    "value tuple relation stream feed update change event time process "
    "management information personal desktop project paper work draft "
    "note report plan idea design implementation evaluation experiment "
    "measure performance efficient fast slow large small new old good "
    "simple complex powerful versatile unified heterogeneous structured "
    "semistructured unstructured logical physical lazy intensional "
    "extensional infinite finite"
).split()

_TECH = (
    "database databases indexing retrieval ranking keyword fulltext "
    "optimizer operator pipeline iterator hash btree partition replica "
    "catalog transaction concurrency recovery buffer cache latency "
    "throughput scalability benchmark workload dataset corpus parser "
    "tokenizer converter plugin subsystem protocol imap smtp rss atom "
    "xml latex unicode metadata namespace hierarchy dataspace pim "
    "filesystem versioning lineage provenance synchronization"
).split()

_FIRST_NAMES = (
    "Jens Marcos Donald Michael Anna Laura Peter David Maria Thomas "
    "Susan Robert Karen James Linda Carlos Julia Martin Sofia Andreas"
).split()

_LAST_NAMES = (
    "Dittrich Salles Kossmann Franklin Halevy Maier Knuth Gray Codd "
    "Stonebraker Widom Naughton Weikum Fischer Blunschi Girard Steybe"
).split()

_TITLE_WORDS = (
    "Unified Versatile Adaptive Scalable Efficient Personal Structured "
    "Dynamic Lazy Incremental Distributed Semantic Flexible Modular"
).split()

_TITLE_NOUNS = (
    "Dataspaces Indexing Queries Streams Views Models Systems Search "
    "Integration Storage Management Processing Optimization Replication"
).split()


class Corpus:
    """Seeded text generator. All output is a pure function of the seed
    and the call sequence."""

    def __init__(self, seed: int = 42):
        self.rng = random.Random(seed)
        self._vocabulary = _COMMON + _TECH

    # -- words and names ---------------------------------------------------------

    def word(self) -> str:
        return self.rng.choice(self._vocabulary)

    def words(self, count: int) -> list[str]:
        return [self.word() for _ in range(count)]

    def person_name(self) -> str:
        return (f"{self.rng.choice(_FIRST_NAMES)} "
                f"{self.rng.choice(_LAST_NAMES)}")

    def email_address(self) -> str:
        name = self.rng.choice(_FIRST_NAMES).lower()
        host = self.rng.choice(
            ["ethz.ch", "example.org", "dbis.edu", "imemex.org", "mail.com"]
        )
        return f"{name}.{self.rng.choice(_LAST_NAMES).lower()}@{host}"

    def title(self, *, words: int = 4) -> str:
        parts = [self.rng.choice(_TITLE_WORDS)
                 for _ in range(max(1, words - 1))]
        parts.append(self.rng.choice(_TITLE_NOUNS))
        return " ".join(parts)

    def identifier(self, prefix: str = "item") -> str:
        return f"{prefix}{self.rng.randrange(10_000):04d}"

    # -- sentences and paragraphs -----------------------------------------------------

    def sentence(self, *, min_words: int = 6, max_words: int = 16) -> str:
        count = self.rng.randint(min_words, max_words)
        words = self.words(count)
        words[0] = words[0].capitalize()
        return " ".join(words) + "."

    def paragraph(self, *, sentences: int = 4,
                  plant: list[str] | None = None) -> str:
        """A paragraph; each phrase in ``plant`` is injected as its own
        sentence at a random position."""
        parts = [self.sentence() for _ in range(max(1, sentences))]
        for phrase in plant or []:
            position = self.rng.randrange(len(parts) + 1)
            parts.insert(position, f"{phrase.capitalize().rstrip('.')}." if not phrase[0].isupper() else f"{phrase.rstrip('.')}." )
        return " ".join(parts)

    def text(self, *, paragraphs: int = 3,
             plant: list[str] | None = None) -> str:
        """Multi-paragraph text with the planted phrases spread across it."""
        plant = list(plant or [])
        self.rng.shuffle(plant)
        blocks = []
        for index in range(max(1, paragraphs)):
            share = plant[index::max(1, paragraphs)]
            blocks.append(self.paragraph(sentences=self.rng.randint(2, 6),
                                         plant=share))
        return "\n\n".join(blocks)

    # -- file names ----------------------------------------------------------------------

    def file_name(self, extension: str) -> str:
        stem = "_".join(self.words(self.rng.randint(1, 3)))
        return f"{stem}_{self.rng.randrange(1000):03d}.{extension}"

    def folder_name(self) -> str:
        return "_".join(w.capitalize() for w in self.words(self.rng.randint(1, 2)))

    # -- pseudo-binary content ---------------------------------------------------------------

    def binary_blob(self, size: int) -> str:
        """Content that fails the text sniffer (simulated image/audio)."""
        rng = self.rng
        return "".join(chr(rng.randrange(0x00, 0x09)) for _ in range(size))
