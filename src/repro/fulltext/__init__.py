"""A from-scratch full-text engine (the reproduction's Apache Lucene).

The paper's iMeMex prototype builds its Name Index and Content Index on
Lucene 1.4.3: analyzed inverted keyword lists with positional postings.
This package provides the same functional contract:

* :mod:`analyzer` — tokenization and normalization;
* :mod:`postings` — positional postings lists;
* :mod:`index` — the inverted index with add/remove/size accounting
  (size accounting feeds Table 3 of the evaluation);
* :mod:`query` — term, phrase, wildcard and boolean queries;
* :mod:`scoring` — TF-IDF ranking.

The content index is *not* a replica: like the paper's, it cannot return
the original content, only the document keys that match.
"""

from .analyzer import Analyzer, Token, tokenize
from .index import InvertedIndex
from .query import (
    And,
    MatchAll,
    Not,
    Or,
    Phrase,
    Query,
    Term,
    Wildcard,
    parse_query,
)
from .scoring import score_tfidf

__all__ = [
    "Analyzer", "Token", "tokenize",
    "InvertedIndex",
    "And", "MatchAll", "Not", "Or", "Phrase", "Query", "Term", "Wildcard",
    "parse_query", "score_tfidf",
]
