"""Full-text queries: term, phrase, wildcard and boolean combinations.

Queries evaluate against an :class:`~repro.fulltext.index.InvertedIndex`
and return the set of matching *external keys*. Evaluation is set-based
(matching Lucene's filter behavior); ranked retrieval lives in
:mod:`repro.fulltext.scoring`.

:func:`parse_query` understands the keyword sub-language used inside iQL
predicates: whitespace-separated terms are AND-ed, quoted strings are
phrases, ``or``/``and``/``not`` combine, parentheses group, ``*``/``?``
in a bare word make it a wildcard. Example: ``"database tuning" or
(index* and not btree)``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable

from ..core.errors import FullTextError, QuerySyntaxError
from .index import InvertedIndex


def _new_keyset():
    # deferred import: see repro.fulltext.postings
    from ..rvm.keyset import KeySet
    return KeySet()


def _keyset_of(ids) -> "object":
    from ..rvm.keyset import KeySet
    return KeySet.from_iterable(ids)


class Query:
    """Base class; :meth:`docs` returns matching catalog (doc) ids."""

    def docs(self, index: InvertedIndex) -> set[int]:
        raise NotImplementedError

    def ids(self, index: InvertedIndex):
        """Matching doc ids as a :class:`~repro.rvm.keyset.KeySet` —
        the engine-facing form. Boolean nodes override this with
        word-parallel keyset algebra; positional queries fall back to
        wrapping :meth:`docs` (the position work dominates there)."""
        return _keyset_of(self.docs(index))

    def keys(self, index: InvertedIndex) -> set[str]:
        """Matching external document keys."""
        return {index.key_of(doc) for doc in self.docs(index)}


@dataclass(frozen=True)
class MatchAll(Query):
    """Matches every indexed document."""

    def docs(self, index: InvertedIndex) -> set[int]:
        return set(index.all_doc_ids())

    def ids(self, index: InvertedIndex):
        return index.doc_set().copy()


@dataclass(frozen=True)
class Term(Query):
    """Matches documents containing the (analyzed) term."""

    term: str

    def docs(self, index: InvertedIndex) -> set[int]:
        analyzed = index.analyzer.terms(self.term)
        if not analyzed:
            return set()
        if len(analyzed) > 1:
            # the "term" analyzes to several tokens -> phrase semantics
            return Phrase(tuple(analyzed)).docs(index)
        postings = index.postings(analyzed[0])
        return set(postings.doc_ids()) if postings else set()

    def ids(self, index: InvertedIndex):
        analyzed = index.analyzer.terms(self.term)
        if not analyzed:
            return _new_keyset()
        if len(analyzed) > 1:
            return Phrase(tuple(analyzed)).ids(index)
        postings = index.postings(analyzed[0])
        return postings.doc_set().copy() if postings else _new_keyset()


@dataclass(frozen=True)
class Phrase(Query):
    """Matches documents containing the terms at consecutive positions."""

    terms: tuple[str, ...]

    @classmethod
    def of(cls, text: str, index: InvertedIndex | None = None) -> "Phrase":
        from .analyzer import DEFAULT_ANALYZER
        analyzer = index.analyzer if index is not None else DEFAULT_ANALYZER
        return cls(tuple(analyzer.terms(text)))

    def docs(self, index: InvertedIndex) -> set[int]:
        if not self.terms:
            return set()
        lists = []
        for term in self.terms:
            postings = index.postings(term)
            if postings is None:
                return set()
            lists.append(postings)
        # intersect candidate docs via the rarest list first
        lists_sorted = sorted(lists, key=len)
        candidates = set(lists_sorted[0].doc_ids())
        for postings in lists_sorted[1:]:
            candidates &= set(postings.doc_ids())
            if not candidates:
                return set()
        out: set[int] = set()
        for doc in candidates:
            position_sets = [set(lst.get(doc).positions) for lst in lists]  # type: ignore[union-attr]
            first = position_sets[0]
            if any(all(start + offset in position_sets[offset]
                       for offset in range(1, len(position_sets)))
                   for start in first):
                out.add(doc)
        return out


@dataclass(frozen=True)
class Wildcard(Query):
    """Matches documents containing any term matching the pattern.

    ``*`` matches any run of characters, ``?`` exactly one. The pattern
    is matched against analyzed (lowercased) dictionary terms.
    """

    pattern: str

    def _regex(self) -> re.Pattern[str]:
        out = []
        for ch in self.pattern.lower():
            if ch == "*":
                out.append(".*")
            elif ch == "?":
                out.append(".")
            else:
                out.append(re.escape(ch))
        return re.compile("^" + "".join(out) + "$")

    def docs(self, index: InvertedIndex) -> set[int]:
        regex = self._regex()
        matched: set[int] = set()
        for term in index.terms_matching(lambda t: regex.match(t)):
            postings = index.postings(term)
            if postings:
                matched.update(postings.doc_ids())
        return matched

    def ids(self, index: InvertedIndex):
        regex = self._regex()
        matched = _new_keyset()
        for term in index.terms_matching(lambda t: regex.match(t)):
            postings = index.postings(term)
            if postings:
                matched = matched.or_(postings.doc_set())
        return matched


@dataclass(frozen=True)
class And(Query):
    parts: tuple[Query, ...]

    def docs(self, index: InvertedIndex) -> set[int]:
        if not self.parts:
            return set()
        result: set[int] | None = None
        for part in self.parts:
            docs = part.docs(index)
            result = docs if result is None else result & docs
            if not result:
                return set()
        return result or set()

    def ids(self, index: InvertedIndex):
        if not self.parts:
            return _new_keyset()
        result = None
        for part in self.parts:
            ids = part.ids(index)
            result = ids if result is None else result.and_(ids)
            if not result:
                return _new_keyset()
        return result


@dataclass(frozen=True)
class Or(Query):
    parts: tuple[Query, ...]

    def docs(self, index: InvertedIndex) -> set[int]:
        result: set[int] = set()
        for part in self.parts:
            result |= part.docs(index)
        return result

    def ids(self, index: InvertedIndex):
        result = _new_keyset()
        for part in self.parts:
            result = result.or_(part.ids(index))
        return result


@dataclass(frozen=True)
class Not(Query):
    """Complement relative to the full document set."""

    part: Query

    def docs(self, index: InvertedIndex) -> set[int]:
        return set(index.all_doc_ids()) - self.part.docs(index)

    def ids(self, index: InvertedIndex):
        return index.doc_set().andnot(self.part.ids(index))


# ---------------------------------------------------------------------------
# Keyword query mini-language
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r'\s*(?:(?P<quote>"[^"]*")|(?P<lparen>\()|(?P<rparen>\))|(?P<word>[^\s()"]+))'
)


def _tokenize_query(text: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            remaining = text[pos:].strip()
            if remaining:
                raise QuerySyntaxError(f"cannot tokenize keyword query at {remaining!r}")
            break
        tokens.append(match.group(0).strip())
        pos = match.end()
    return [t for t in tokens if t]


def parse_query(text: str) -> Query:
    """Parse the keyword mini-language into a :class:`Query` tree.

    Grammar (lowest to highest precedence)::

        or_expr   := and_expr ("or" and_expr)*
        and_expr  := unary (("and")? unary)*     -- juxtaposition is AND
        unary     := "not" unary | atom
        atom      := '"..."' | "(" or_expr ")" | word
    """
    tokens = _tokenize_query(text)
    if not tokens:
        raise QuerySyntaxError("empty keyword query")
    parser = _KeywordParser(tokens)
    query = parser.parse_or()
    if not parser.at_end:
        raise QuerySyntaxError(f"unexpected token {parser.peek()!r} in keyword query")
    return query


class _KeywordParser:
    def __init__(self, tokens: list[str]):
        self.tokens = tokens
        self.pos = 0

    @property
    def at_end(self) -> bool:
        return self.pos >= len(self.tokens)

    def peek(self) -> str | None:
        return self.tokens[self.pos] if not self.at_end else None

    def next(self) -> str:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def parse_or(self) -> Query:
        parts = [self.parse_and()]
        while self.peek() is not None and self.peek().lower() == "or":  # type: ignore[union-attr]
            self.next()
            parts.append(self.parse_and())
        return parts[0] if len(parts) == 1 else Or(tuple(parts))

    def parse_and(self) -> Query:
        parts = [self.parse_unary()]
        while True:
            token = self.peek()
            if token is None or token == ")" or token.lower() == "or":
                break
            if token.lower() == "and":
                self.next()
                continue
            parts.append(self.parse_unary())
        return parts[0] if len(parts) == 1 else And(tuple(parts))

    def parse_unary(self) -> Query:
        token = self.peek()
        if token is None:
            raise QuerySyntaxError("keyword query ended unexpectedly")
        if token.lower() == "not":
            self.next()
            return Not(self.parse_unary())
        return self.parse_atom()

    def parse_atom(self) -> Query:
        token = self.next()
        if token == "(":
            inner = self.parse_or()
            if self.peek() != ")":
                raise QuerySyntaxError("missing ')' in keyword query")
            self.next()
            return inner
        if token.startswith('"'):
            return Phrase.of(token[1:-1])
        if token == ")":
            raise QuerySyntaxError("unexpected ')' in keyword query")
        if "*" in token or "?" in token:
            return Wildcard(token)
        return Term(token)


def search(index: InvertedIndex, query: Query | str) -> set[str]:
    """Evaluate ``query`` (text or tree) and return matching keys."""
    if isinstance(query, str):
        query = parse_query(query)
    return query.keys(index)
