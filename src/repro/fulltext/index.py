"""The inverted index.

Documents are added under an external string key (in iMeMex: the view
id's URI); the index assigns dense internal ids and maintains one
positional postings list per term. Optionally the index also *stores*
the original text per document, turning it into an index+replica (the
paper's Name Index & Replica does this; the Content Index does not).

Size accounting (:meth:`InvertedIndex.size_bytes`) approximates an
uncompressed on-disk layout and feeds Table 3 of the evaluation.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..core.errors import FullTextError
from .analyzer import DEFAULT_ANALYZER, Analyzer
from .postings import PostingsList


class InvertedIndex:
    """A positional inverted index over string-keyed documents."""

    def __init__(self, *, analyzer: Analyzer | None = None,
                 store_text: bool = False):
        self.analyzer = analyzer if analyzer is not None else DEFAULT_ANALYZER
        self.store_text = store_text
        self._terms: dict[str, PostingsList] = {}
        self._key_to_doc: dict[str, int] = {}
        self._doc_to_key: dict[int, str] = {}
        self._doc_lengths: dict[int, int] = {}
        self._stored_text: dict[int, str] = {}
        self._next_doc = 0
        self._total_input_bytes = 0

    # -- write path -----------------------------------------------------------

    def add(self, key: str, text: str) -> int:
        """Index ``text`` under ``key``; re-adding a key replaces it."""
        if key in self._key_to_doc:
            self.remove(key)
        doc = self._next_doc
        self._next_doc += 1
        self._key_to_doc[key] = doc
        self._doc_to_key[doc] = key
        length = 0
        for token in self.analyzer.tokens(text):
            self._terms.setdefault(token.term, PostingsList()).add(
                doc, token.position
            )
            length += 1
        self._doc_lengths[doc] = length
        self._total_input_bytes += len(text.encode("utf-8", "replace"))
        if self.store_text:
            self._stored_text[doc] = text
        return doc

    def remove(self, key: str) -> bool:
        """Remove a document; returns True when it was present."""
        doc = self._key_to_doc.pop(key, None)
        if doc is None:
            return False
        del self._doc_to_key[doc]
        self._doc_lengths.pop(doc, None)
        self._stored_text.pop(doc, None)
        empty_terms = []
        for term, postings in self._terms.items():
            if postings.remove_doc(doc) and not postings:
                empty_terms.append(term)
        for term in empty_terms:
            del self._terms[term]
        return True

    # -- read path --------------------------------------------------------------

    def __contains__(self, key: object) -> bool:
        return key in self._key_to_doc

    def __len__(self) -> int:
        return len(self._key_to_doc)

    @property
    def document_count(self) -> int:
        return len(self._key_to_doc)

    @property
    def term_count(self) -> int:
        return len(self._terms)

    def keys(self) -> Iterator[str]:
        return iter(self._key_to_doc)

    def postings(self, term: str) -> PostingsList | None:
        """The postings list for an *analyzed* term, or None."""
        return self._terms.get(term)

    def terms_matching(self, predicate) -> Iterator[str]:
        """All dictionary terms satisfying ``predicate`` (for wildcards)."""
        return (term for term in self._terms if predicate(term))

    def key_of(self, doc: int) -> str:
        try:
            return self._doc_to_key[doc]
        except KeyError:
            raise FullTextError(f"unknown internal doc id {doc}") from None

    def doc_of(self, key: str) -> int | None:
        return self._key_to_doc.get(key)

    def doc_length(self, doc: int) -> int:
        return self._doc_lengths.get(doc, 0)

    def stored_text(self, key: str) -> str:
        """Return the replicated text (only when ``store_text=True``)."""
        if not self.store_text:
            raise FullTextError(
                "this index is not a replica: original text is not stored"
            )
        doc = self._key_to_doc.get(key)
        if doc is None:
            raise FullTextError(f"unknown document key {key!r}")
        return self._stored_text[doc]

    def all_doc_ids(self) -> list[int]:
        return sorted(self._doc_to_key)

    def stored_items(self) -> Iterator[tuple[str, str]]:
        """Iterate ``(key, original text)`` pairs (replica indexes only)."""
        if not self.store_text:
            raise FullTextError(
                "this index is not a replica: original text is not stored"
            )
        for doc, text in self._stored_text.items():
            yield self._doc_to_key[doc], text

    # -- statistics -----------------------------------------------------------

    @property
    def total_input_bytes(self) -> int:
        """Total UTF-8 bytes of all text ever fed to :meth:`add` (net
        input size in the paper's Table 3 terminology)."""
        return self._total_input_bytes

    def size_bytes(self) -> int:
        """Approximate index size: dictionary + postings (+ stored text)."""
        dictionary = sum(len(term.encode("utf-8")) + 8 for term in self._terms)
        postings = sum(p.size_bytes() for p in self._terms.values())
        stored = sum(len(t.encode("utf-8", "replace"))
                     for t in self._stored_text.values())
        keymap = sum(len(k.encode("utf-8")) + 4 for k in self._key_to_doc)
        return dictionary + postings + stored + keymap

    def stats(self) -> "IndexStats":
        """The shared :class:`~repro.obs.IndexStats` shape: entries are
        indexed documents; term and net-input counts ride in
        ``detail``."""
        from ..obs import IndexStats
        return IndexStats(
            name="fulltext",
            entries=self.document_count,
            bytes_estimate=self.size_bytes(),
            detail={
                "terms": self.term_count,
                "input_bytes": self.total_input_bytes,
            },
        )
