"""The inverted index.

Documents are added under an external string key (in iMeMex: the view
id's URI); the key is interned in the process-wide URI dictionary and
the resulting dense **catalog id** is the document id everywhere —
postings, lengths, stored text. There is no per-index id space (the
keyset refactor, DESIGN.md §4j, deleted it): the same integer
identifies a view in the catalog, in every index, in the group replica
and in the engine's key sets, so index results flow to the query engine
as :class:`~repro.rvm.keyset.KeySet` s with no translation step.

Optionally the index also *stores* the original text per document,
turning it into an index+replica (the paper's Name Index & Replica does
this; the Content Index does not).

Size accounting (:meth:`InvertedIndex.size_bytes`) reports the
compressed keyset layout and feeds Table 3 of the evaluation. The URI ↔
id dictionary itself is shared process state (the catalog's) and is not
double-counted here.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..core.errors import FullTextError
from .analyzer import DEFAULT_ANALYZER, Analyzer
from .postings import PostingsList


def _global_dictionary():
    # deferred: repro.rvm imports this module (indexes -> InvertedIndex);
    # importing the rvm package at module scope would cycle when the
    # fulltext package is imported first
    from ..rvm.uridict import global_uri_dictionary
    return global_uri_dictionary()


def _new_keyset():
    from ..rvm.keyset import KeySet
    return KeySet()


class InvertedIndex:
    """A positional inverted index keyed by catalog ids."""

    def __init__(self, *, analyzer: Analyzer | None = None,
                 store_text: bool = False):
        self.analyzer = analyzer if analyzer is not None else DEFAULT_ANALYZER
        self.store_text = store_text
        self._dictionary = _global_dictionary()
        self._terms: dict[str, PostingsList] = {}
        self._docs = _new_keyset()
        self._doc_lengths: dict[int, int] = {}
        self._stored_text: dict[int, str] = {}
        self._total_input_bytes = 0

    # -- write path -----------------------------------------------------------

    def add(self, key: str, text: str) -> int:
        """Index ``text`` under ``key``; re-adding a key replaces it.
        Returns the document's catalog id."""
        doc = self._dictionary.intern(key)
        if doc in self._doc_lengths:
            self._remove_doc(doc)
        self._docs.add(doc)
        length = 0
        for token in self.analyzer.tokens(text):
            self._terms.setdefault(token.term, PostingsList()).add(
                doc, token.position
            )
            length += 1
        self._doc_lengths[doc] = length
        self._total_input_bytes += len(text.encode("utf-8", "replace"))
        if self.store_text:
            self._stored_text[doc] = text
        return doc

    def remove(self, key: str) -> bool:
        """Remove a document; returns True when it was present."""
        doc = self._dictionary.id_of(key)
        if doc is None or doc not in self._doc_lengths:
            return False
        return self._remove_doc(doc)

    def _remove_doc(self, doc: int) -> bool:
        self._docs.discard(doc)
        self._doc_lengths.pop(doc, None)
        self._stored_text.pop(doc, None)
        empty_terms = []
        for term, postings in self._terms.items():
            if postings.remove_doc(doc) and not postings:
                empty_terms.append(term)
        for term in empty_terms:
            del self._terms[term]
        return True

    # -- read path --------------------------------------------------------------

    def __contains__(self, key: object) -> bool:
        if not isinstance(key, str):
            return False
        doc = self._dictionary.id_of(key)
        return doc is not None and doc in self._doc_lengths

    def __len__(self) -> int:
        return len(self._doc_lengths)

    @property
    def document_count(self) -> int:
        return len(self._doc_lengths)

    @property
    def term_count(self) -> int:
        return len(self._terms)

    def keys(self) -> Iterator[str]:
        uri_of = self._dictionary.uri_of
        return (uri_of(doc) for doc in self._doc_lengths)

    def postings(self, term: str) -> PostingsList | None:
        """The postings list for an *analyzed* term, or None."""
        return self._terms.get(term)

    def terms_matching(self, predicate) -> Iterator[str]:
        """All dictionary terms satisfying ``predicate`` (for wildcards)."""
        return (term for term in self._terms if predicate(term))

    def key_of(self, doc: int) -> str:
        if doc not in self._doc_lengths:
            raise FullTextError(f"unknown doc id {doc}")
        return self._dictionary.uri_of(doc)

    def doc_of(self, key: str) -> int | None:
        doc = self._dictionary.id_of(key)
        if doc is None or doc not in self._doc_lengths:
            return None
        return doc

    def doc_length(self, doc: int) -> int:
        return self._doc_lengths.get(doc, 0)

    def stored_text(self, key: str) -> str:
        """Return the replicated text (only when ``store_text=True``)."""
        if not self.store_text:
            raise FullTextError(
                "this index is not a replica: original text is not stored"
            )
        doc = self.doc_of(key)
        if doc is None:
            raise FullTextError(f"unknown document key {key!r}")
        return self._stored_text[doc]

    def all_doc_ids(self) -> list[int]:
        return self._docs.to_list()

    def doc_set(self):
        """The live :class:`~repro.rvm.keyset.KeySet` of every indexed
        document's catalog id (read-only by convention)."""
        return self._docs

    def stored_items(self) -> Iterator[tuple[str, str]]:
        """Iterate ``(key, original text)`` pairs (replica indexes only)."""
        uri_of = self._dictionary.uri_of
        return ((uri_of(doc), text) for doc, text in self.stored_id_items())

    def stored_id_items(self) -> Iterator[tuple[int, str]]:
        """Iterate ``(catalog id, original text)`` pairs — the id-keyed
        row source the engine's name scan partitions over."""
        if not self.store_text:
            raise FullTextError(
                "this index is not a replica: original text is not stored"
            )
        return iter(self._stored_text.items())

    # -- statistics -----------------------------------------------------------

    @property
    def total_input_bytes(self) -> int:
        """Total UTF-8 bytes of all text ever fed to :meth:`add` (net
        input size in the paper's Table 3 terminology)."""
        return self._total_input_bytes

    def size_bytes(self) -> int:
        """Compressed index size: term dictionary + keyset postings
        (+ stored text) + the per-document length table. The URI ↔ id
        mapping is the shared catalog dictionary — not counted here."""
        dictionary = sum(len(term.encode("utf-8")) + 8 for term in self._terms)
        postings = sum(p.size_bytes() for p in self._terms.values())
        stored = sum(len(t.encode("utf-8", "replace")) + 8
                     for t in self._stored_text.values())
        doc_table = self._docs.size_bytes() + 12 * len(self._doc_lengths)
        return dictionary + postings + stored + doc_table

    def stats(self) -> "IndexStats":
        """The shared :class:`~repro.obs.IndexStats` shape: entries are
        indexed documents; term and net-input counts ride in
        ``detail``."""
        from ..obs import IndexStats
        return IndexStats(
            name="fulltext",
            entries=self.document_count,
            bytes_estimate=self.size_bytes(),
            detail={
                "terms": self.term_count,
                "input_bytes": self.total_input_bytes,
            },
        )
