"""Tokenization and normalization for the full-text engine.

The default analyzer mirrors Lucene's StandardAnalyzer in spirit:
alphanumeric runs become terms, terms are lowercased, and an optional
stopword list drops high-frequency function words. Positions are
token ordinals (not byte offsets), which is what phrase matching needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

#: A small English stopword list. Disabled by default: the paper's
#: queries include phrases ("database tuning") whose terms must all be
#: indexed, and Lucene 1.4's default list famously broke phrases like
#: "to be or not to be" — we keep the default index exhaustive.
DEFAULT_STOPWORDS = frozenset({
    "a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "if",
    "in", "into", "is", "it", "no", "not", "of", "on", "or", "such",
    "that", "the", "their", "then", "there", "these", "they", "this",
    "to", "was", "will", "with",
})


@dataclass(frozen=True, slots=True)
class Token:
    """One analyzed term occurrence: the term and its token position."""

    term: str
    position: int


def _iter_words(text: str) -> Iterator[str]:
    word: list[str] = []
    for ch in text:
        if ch.isalnum():
            word.append(ch)
        elif word:
            yield "".join(word)
            word.clear()
    if word:
        yield "".join(word)


class Analyzer:
    """Turns raw text into a normalized token stream.

    ``min_length`` drops noise tokens (single characters by default keep
    — names like "C" appear in personal data — so the default is 1).
    """

    def __init__(self, *, stopwords: Iterable[str] | None = None,
                 lowercase: bool = True, min_length: int = 1,
                 max_length: int = 64):
        self.stopwords = frozenset(stopwords) if stopwords is not None else frozenset()
        self.lowercase = lowercase
        self.min_length = min_length
        self.max_length = max_length

    def tokens(self, text: str) -> Iterator[Token]:
        """Yield analyzed tokens with consecutive positions.

        Positions count *emitted* words: stopword removal leaves gaps,
        matching Lucene's position-increment behavior, so phrases cannot
        falsely match across a removed stopword.
        """
        for position, word in enumerate(_iter_words(text)):
            term = word.lower() if self.lowercase else word
            if not self.min_length <= len(term) <= self.max_length:
                continue
            if term in self.stopwords:
                continue
            yield Token(term, position)

    def terms(self, text: str) -> list[str]:
        """Just the term strings, in order."""
        return [token.term for token in self.tokens(text)]


#: The analyzer used across the library unless a caller overrides it.
DEFAULT_ANALYZER = Analyzer()


def tokenize(text: str) -> list[Token]:
    """Tokenize with the default analyzer."""
    return list(DEFAULT_ANALYZER.tokens(text))
