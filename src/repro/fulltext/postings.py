"""Positional postings lists over compressed doc-id sets.

A postings list maps one term to the documents containing it, keeping
per-document occurrence positions for phrase matching. Documents are
identified by the process-wide *catalog ids* of the URI dictionary
(since the keyset refactor, DESIGN.md §4j — there is no per-index doc
id space any more), and the membership set is a
:class:`~repro.rvm.keyset.KeySet`: boolean queries combine postings
with word-parallel bitmap algebra, and the query engine receives the
id set as-is, with no string conversion.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field


def _new_keyset():
    # deferred: repro.rvm imports repro.fulltext (indexes -> InvertedIndex),
    # so a module-level import here would cycle when fulltext loads first
    from ..rvm.keyset import KeySet
    return KeySet()


@dataclass(slots=True)
class Posting:
    """One (document, positions) entry of a postings list."""

    doc: int
    positions: list[int] = field(default_factory=list)

    @property
    def term_frequency(self) -> int:
        return len(self.positions)

    def size_bytes(self) -> int:
        """Approximate serialized size: 4 bytes per position.

        Document membership is *not* counted here — the list's
        compressed keyset accounts for it (see
        :meth:`PostingsList.size_bytes`); Table 3 of the paper reports
        index sizes, and this is what we sum there.
        """
        return 4 * len(self.positions)


class PostingsList:
    """The postings of one term: a compressed doc-id set plus the
    per-document position lists."""

    __slots__ = ("_docs", "_by_doc")

    def __init__(self) -> None:
        self._docs = _new_keyset()
        self._by_doc: dict[int, Posting] = {}

    def add(self, doc: int, position: int) -> None:
        """Record one occurrence of the term in ``doc`` at ``position``.

        Occurrences for one document may arrive in any order; the doc
        set keeps itself sorted (it is a keyset).
        """
        posting = self._by_doc.get(doc)
        if posting is None:
            self._docs.add(doc)
            self._by_doc[doc] = Posting(doc, [position])
        else:
            insort(posting.positions, position)

    def remove_doc(self, doc: int) -> bool:
        """Drop a document's posting; returns True when it existed."""
        if self._by_doc.pop(doc, None) is None:
            return False
        self._docs.discard(doc)
        return True

    def get(self, doc: int) -> Posting | None:
        return self._by_doc.get(doc)

    def doc_ids(self) -> list[int]:
        return self._docs.to_list()

    def doc_set(self):
        """The live :class:`~repro.rvm.keyset.KeySet` of doc ids.

        Shared, not copied — callers must treat it as read-only (the
        boolean query operators do: every keyset op allocates a fresh
        result).
        """
        return self._docs

    @property
    def document_frequency(self) -> int:
        return len(self._by_doc)

    def __iter__(self):
        by_doc = self._by_doc
        return (by_doc[doc] for doc in self._docs)

    def __len__(self) -> int:
        return len(self._by_doc)

    def __bool__(self) -> bool:
        return bool(self._by_doc)

    def size_bytes(self) -> int:
        """Compressed layout: the keyset's footprint plus positions."""
        return self._docs.size_bytes() + sum(
            p.size_bytes() for p in self._by_doc.values()
        )
