"""Positional postings lists.

A postings list maps one term to the documents containing it, keeping
per-document occurrence positions for phrase matching. Documents are
identified by dense integer ids assigned by the index; lists stay sorted
by doc id so boolean operations can merge efficiently.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass, field


@dataclass(slots=True)
class Posting:
    """One (document, positions) entry of a postings list."""

    doc: int
    positions: list[int] = field(default_factory=list)

    @property
    def term_frequency(self) -> int:
        return len(self.positions)

    def size_bytes(self) -> int:
        """Approximate serialized size: 4-byte doc id + 4 bytes/position.

        The estimate mirrors an uncompressed on-disk layout; Table 3 of
        the paper reports index sizes, and this is what we sum there.
        """
        return 4 + 4 * len(self.positions)


class PostingsList:
    """The postings of one term, sorted by document id."""

    __slots__ = ("_postings", "_doc_ids")

    def __init__(self) -> None:
        self._postings: list[Posting] = []
        self._doc_ids: list[int] = []

    def add(self, doc: int, position: int) -> None:
        """Record one occurrence of the term in ``doc`` at ``position``.

        Occurrences for one document may arrive in any order; documents
        are kept sorted by id.
        """
        index = bisect_left(self._doc_ids, doc)
        if index < len(self._doc_ids) and self._doc_ids[index] == doc:
            insort(self._postings[index].positions, position)
        else:
            self._doc_ids.insert(index, doc)
            self._postings.insert(index, Posting(doc, [position]))

    def remove_doc(self, doc: int) -> bool:
        """Drop a document's posting; returns True when it existed."""
        index = bisect_left(self._doc_ids, doc)
        if index < len(self._doc_ids) and self._doc_ids[index] == doc:
            del self._doc_ids[index]
            del self._postings[index]
            return True
        return False

    def get(self, doc: int) -> Posting | None:
        index = bisect_left(self._doc_ids, doc)
        if index < len(self._doc_ids) and self._doc_ids[index] == doc:
            return self._postings[index]
        return None

    def doc_ids(self) -> list[int]:
        return list(self._doc_ids)

    @property
    def document_frequency(self) -> int:
        return len(self._postings)

    def __iter__(self):
        return iter(self._postings)

    def __len__(self) -> int:
        return len(self._postings)

    def __bool__(self) -> bool:
        return bool(self._postings)

    def size_bytes(self) -> int:
        return sum(p.size_bytes() for p in self._postings)
