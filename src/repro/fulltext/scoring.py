"""TF-IDF ranking for the full-text engine.

Set-based retrieval (:mod:`repro.fulltext.query`) answers *which*
documents match; ranking answers *in what order*. The paper mentions
result ranking as ongoing work for iQL — we provide the classic
``tf-idf`` with length normalization (close to Lucene 1.4's practical
scoring) so examples and extensions can rank.
"""

from __future__ import annotations

import math

from .index import InvertedIndex
from .query import Query, Term


def score_tfidf(index: InvertedIndex, terms: list[str] | str,
                *, limit: int | None = None) -> list[tuple[str, float]]:
    """Rank documents by TF-IDF against a bag of query terms.

    ``terms`` may be raw text (analyzed with the index's analyzer) or a
    pre-analyzed term list. Returns ``(key, score)`` pairs sorted by
    descending score (ties broken by key for determinism).
    """
    if isinstance(terms, str):
        terms = index.analyzer.terms(terms)
    doc_count = index.document_count
    if doc_count == 0 or not terms:
        return []
    scores: dict[int, float] = {}
    for term in terms:
        postings = index.postings(term)
        if postings is None:
            continue
        idf = 1.0 + math.log(doc_count / (1 + postings.document_frequency))
        for posting in postings:
            tf = math.sqrt(posting.term_frequency)
            scores[posting.doc] = scores.get(posting.doc, 0.0) + tf * idf
    ranked = []
    for doc, score in scores.items():
        length = index.doc_length(doc)
        norm = 1.0 / math.sqrt(length) if length else 1.0
        ranked.append((index.key_of(doc), score * norm))
    ranked.sort(key=lambda pair: (-pair[1], pair[0]))
    return ranked[:limit] if limit is not None else ranked


def score_query(index: InvertedIndex, query: Query,
                rank_terms: list[str] | str = "",
                *, limit: int | None = None) -> list[tuple[str, float]]:
    """Filter with ``query`` then rank the survivors by ``rank_terms``.

    When ``rank_terms`` is empty and the query is a plain term, the term
    itself ranks; otherwise unranked survivors come back with score 0 in
    key order.
    """
    keys = query.keys(index)
    if not rank_terms and isinstance(query, Term):
        rank_terms = query.term
    if rank_terms:
        ranked = [(key, score) for key, score in score_tfidf(index, rank_terms)
                  if key in keys]
        covered = {key for key, _ in ranked}
        ranked.extend((key, 0.0) for key in sorted(keys - covered))
    else:
        ranked = [(key, 0.0) for key in sorted(keys)]
    return ranked[:limit] if limit is not None else ranked
