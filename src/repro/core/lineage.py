"""Data lineage — Section 8, issue (2), of the paper.

"Data lineage refers to keeping the history of all data transformations
that originated a given resource view." With a unified model such as
iDM, lineage can be kept *across data sources and formats*: a view
extracted from a LaTeX file by a converter, copied to an email
attachment, then surfaced by a query keeps one provenance chain.

:class:`LineageTracker` records :class:`Derivation` edges — (outputs,
operation, inputs) — and answers ancestry/descendant queries over the
resulting derivation DAG.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Iterable

from .errors import LineageError
from .identity import ViewId
from .resource_view import ResourceView


@dataclass(frozen=True)
class Derivation:
    """One transformation: ``inputs`` were turned into ``outputs``.

    ``operation`` names the transformation ("copy", "latex2idm",
    "query:Q4", ...); ``sequence`` is a store-local monotonic ordinal so
    lineage chains are totally ordered without wall-clock time.
    """

    sequence: int
    operation: str
    inputs: tuple[ViewId, ...]
    outputs: tuple[ViewId, ...]


def _ids(views: Iterable[ResourceView | ViewId]) -> tuple[ViewId, ...]:
    out = []
    for item in views:
        out.append(item.view_id if isinstance(item, ResourceView) else item)
    return tuple(out)


class LineageTracker:
    """Records derivations and answers provenance queries.

    The derivation graph must stay acyclic — a view cannot be (transitively)
    derived from itself — which :meth:`record` enforces.
    """

    def __init__(self) -> None:
        self._derivations: list[Derivation] = []
        self._producing: dict[ViewId, list[Derivation]] = {}
        self._consuming: dict[ViewId, list[Derivation]] = {}
        self._counter = itertools.count()

    def record(self, operation: str,
               inputs: Iterable[ResourceView | ViewId],
               outputs: Iterable[ResourceView | ViewId]) -> Derivation:
        """Record one transformation from ``inputs`` to ``outputs``."""
        input_ids = _ids(inputs)
        output_ids = _ids(outputs)
        if not output_ids:
            raise LineageError("a derivation must produce at least one view")
        overlap = set(input_ids) & set(output_ids)
        if overlap:
            raise LineageError(f"derivation outputs overlap inputs: {overlap}")
        # Reject cycles: an input must not be derived from any output.
        for input_id in input_ids:
            ancestry = self.ancestors(input_id) | {input_id}
            if ancestry & set(output_ids):
                raise LineageError(
                    f"cyclic lineage: {input_id} already derives from an output"
                )
        derivation = Derivation(next(self._counter), operation,
                                input_ids, output_ids)
        self._derivations.append(derivation)
        for output in output_ids:
            self._producing.setdefault(output, []).append(derivation)
        for input_id in input_ids:
            self._consuming.setdefault(input_id, []).append(derivation)
        return derivation

    def derivations(self) -> list[Derivation]:
        return list(self._derivations)

    def producers_of(self, view: ResourceView | ViewId) -> list[Derivation]:
        """Derivations that directly produced this view."""
        view_id = view.view_id if isinstance(view, ResourceView) else view
        return list(self._producing.get(view_id, []))

    def ancestors(self, view: ResourceView | ViewId) -> set[ViewId]:
        """All views this one (transitively) derives from."""
        view_id = view.view_id if isinstance(view, ResourceView) else view
        seen: set[ViewId] = set()
        queue: deque[ViewId] = deque([view_id])
        while queue:
            current = queue.popleft()
            for derivation in self._producing.get(current, []):
                for parent in derivation.inputs:
                    if parent not in seen:
                        seen.add(parent)
                        queue.append(parent)
        return seen

    def descendants(self, view: ResourceView | ViewId) -> set[ViewId]:
        """All views (transitively) derived from this one."""
        view_id = view.view_id if isinstance(view, ResourceView) else view
        seen: set[ViewId] = set()
        queue: deque[ViewId] = deque([view_id])
        while queue:
            current = queue.popleft()
            for derivation in self._consuming.get(current, []):
                for child in derivation.outputs:
                    if child not in seen:
                        seen.add(child)
                        queue.append(child)
        return seen

    def chain(self, view: ResourceView | ViewId) -> list[Derivation]:
        """The full provenance of a view: every derivation on some path
        from an underived base view to it, in recording order."""
        view_id = view.view_id if isinstance(view, ResourceView) else view
        relevant: set[int] = set()
        queue: deque[ViewId] = deque([view_id])
        visited: set[ViewId] = set()
        while queue:
            current = queue.popleft()
            if current in visited:
                continue
            visited.add(current)
            for derivation in self._producing.get(current, []):
                relevant.add(derivation.sequence)
                queue.extend(derivation.inputs)
        return [d for d in self._derivations if d.sequence in relevant]

    def is_base(self, view: ResourceView | ViewId) -> bool:
        """True when the view was never produced by a derivation."""
        view_id = view.view_id if isinstance(view, ResourceView) else view
        return view_id not in self._producing
