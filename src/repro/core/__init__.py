"""The iMeMex Data Model (iDM) core: resource views, components, classes,
graph utilities, laziness, intensional data, versioning and lineage."""

from .components import (
    ANY,
    BOOLEAN,
    BYTES,
    DATE,
    FLOAT,
    INTEGER,
    STRING,
    Attribute,
    ContentComponent,
    Domain,
    GroupComponent,
    Schema,
    TupleComponent,
    ViewSequence,
    domain_by_name,
)
from .classes import (
    BUILTIN_REGISTRY,
    ClassRegistry,
    Emptiness,
    Finiteness,
    ResourceViewClass,
    W_FS,
    W_FS_FULL,
    build_builtin_registry,
)
from .errors import (
    ClassConformanceError,
    ComponentError,
    GraphError,
    IdmError,
    InfiniteComponentError,
    LineageError,
    ParseError,
    QueryError,
    SchemaError,
    VersioningError,
)
from .graph import (
    children,
    collect_index,
    count_views,
    descendants,
    find,
    find_by_name,
    has_cycle,
    is_indirectly_related,
    paths_between,
    to_dot,
    traverse,
)
from .identity import DEFAULT_ID_GENERATOR, IdGenerator, ViewId
from .intensional import (
    IntensionalContent,
    IntensionalGroup,
    ServiceError,
    ServiceRegistry,
    intensional_view,
)
from .lazy import CountingProvider, LazyValue
from .lineage import Derivation, LineageTracker
from .resource_view import ResourceView, view
from .versioning import VersionStore, ViewRecord

__all__ = [
    "ANY", "BOOLEAN", "BYTES", "DATE", "FLOAT", "INTEGER", "STRING",
    "Attribute", "ContentComponent", "Domain", "GroupComponent", "Schema",
    "TupleComponent", "ViewSequence", "domain_by_name",
    "BUILTIN_REGISTRY", "ClassRegistry", "Emptiness", "Finiteness",
    "ResourceViewClass", "W_FS", "W_FS_FULL", "build_builtin_registry",
    "ClassConformanceError", "ComponentError", "GraphError", "IdmError",
    "InfiniteComponentError", "LineageError", "ParseError", "QueryError",
    "SchemaError", "VersioningError",
    "children", "collect_index", "count_views", "descendants", "find",
    "find_by_name", "has_cycle", "is_indirectly_related", "paths_between",
    "to_dot", "traverse",
    "DEFAULT_ID_GENERATOR", "IdGenerator", "ViewId",
    "IntensionalContent", "IntensionalGroup", "ServiceError",
    "ServiceRegistry", "intensional_view",
    "CountingProvider", "LazyValue",
    "Derivation", "LineageTracker",
    "ResourceView", "view",
    "VersionStore", "ViewRecord",
]
