"""Resource view classes — Definition 2 of the paper.

A resource view class is a set of formal restrictions on the four
components of a view:

1. *emptiness* of components,
2. the *schema* of the tuple component,
3. *finiteness* of the content or group component,
4. the *classes of directly related* resource views.

Classes may be organized in generalization hierarchies: a view obeying a
class automatically obeys all of its generalizations. Not every view
needs a class — iDM supports schema-first, schema-later and schema-never
modeling — so conformance checking is always an explicit operation, never
an implicit gate.

:data:`BUILTIN_REGISTRY` ships every class of the paper's Table 1 (file,
folder, tuple, relation, reldb, xmltext, xmlelem, xmldoc, xmlfile,
datstream, tupstream, rssatom) plus the classes the evaluation queries
reference (latexfile, latex_section, figure, environment, texref,
emailmessage, emailfolder, axml and friends).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from .components import (
    DATE,
    INTEGER,
    STRING,
    Attribute,
    ContentComponent,
    GroupComponent,
    Schema,
    ViewSequence,
)
from .errors import ClassConformanceError, UnknownClassError
from .resource_view import ResourceView


class Emptiness(enum.Enum):
    """Restriction 1: must a component be empty, non-empty, or either?"""

    EMPTY = "empty"
    NON_EMPTY = "non-empty"
    ANY = "any"


class Finiteness(enum.Enum):
    """Restriction 3: must a content/group part be finite, infinite, empty?"""

    EMPTY = "empty"
    FINITE = "finite"            # finite, possibly empty
    FINITE_NON_EMPTY = "finite-non-empty"
    INFINITE = "infinite"
    ANY = "any"


#: The filesystem-level schema ``W_FS`` of Section 3.2. The paper lists
#: size, creation time and last modified time with a trailing ellipsis;
#: classes therefore require these attributes as a subset rather than an
#: exact schema.
W_FS = Schema([
    Attribute("size", INTEGER),
    Attribute("created", DATE),
    Attribute("modified", DATE),
])

#: Extra attributes the filesystem plugin records beyond ``W_FS``.
W_FS_FULL = Schema(list(W_FS) + [Attribute("path", STRING)])


@dataclass(frozen=True)
class ResourceViewClass:
    """One resource view class: a named bundle of component restrictions.

    ``required_attributes`` implements restriction 2 as a subset
    constraint (the view's tuple schema must contain these attributes
    with compatible domains); ``exact_schema`` pins the schema exactly.
    ``related_classes`` implements restriction 4: when not ``None``, every
    directly related view carrying a class must carry one of the listed
    classes (or a specialization of one). Unclassed related views are
    permitted unless ``require_related_classed`` is set, preserving the
    schema-later philosophy.
    """

    name: str
    parent: str | None = None
    name_emptiness: Emptiness = Emptiness.ANY
    tuple_emptiness: Emptiness = Emptiness.ANY
    content_emptiness: Emptiness = Emptiness.ANY
    group_emptiness: Emptiness = Emptiness.ANY
    required_attributes: Schema | None = None
    exact_schema: Schema | None = None
    content_finiteness: Finiteness = Finiteness.ANY
    group_set_finiteness: Finiteness = Finiteness.ANY
    group_seq_finiteness: Finiteness = Finiteness.ANY
    related_classes: frozenset[str] | None = None
    require_related_classed: bool = False
    description: str = ""

    def __post_init__(self) -> None:
        if self.required_attributes is not None and self.exact_schema is not None:
            raise ClassConformanceError(
                f"class {self.name!r}: give required_attributes or exact_schema, "
                "not both"
            )


class ClassRegistry:
    """A name→class mapping with generalization-aware lookups."""

    def __init__(self) -> None:
        self._classes: dict[str, ResourceViewClass] = {}

    def register(self, cls: ResourceViewClass) -> ResourceViewClass:
        if cls.name in self._classes:
            raise ClassConformanceError(f"class {cls.name!r} already registered")
        if cls.parent is not None and cls.parent not in self._classes:
            raise UnknownClassError(
                f"class {cls.name!r} names unknown parent {cls.parent!r}"
            )
        self._classes[cls.name] = cls
        return cls

    def get(self, name: str) -> ResourceViewClass:
        try:
            return self._classes[name]
        except KeyError:
            raise UnknownClassError(f"unknown resource view class: {name!r}") from None

    def __contains__(self, name: object) -> bool:
        return name in self._classes

    def __iter__(self) -> Iterator[ResourceViewClass]:
        return iter(self._classes.values())

    def names(self) -> list[str]:
        return sorted(self._classes)

    def ancestors(self, name: str) -> list[str]:
        """All generalizations of ``name``, nearest first (excludes name)."""
        out: list[str] = []
        current = self.get(name).parent
        while current is not None:
            out.append(current)
            current = self.get(current).parent
        return out

    def is_subclass(self, name: str, ancestor: str) -> bool:
        """True when ``name`` is ``ancestor`` or one of its specializations."""
        return name == ancestor or ancestor in self.ancestors(name)

    def classes_of(self, view: ResourceView) -> list[str]:
        """All classes the view obeys: its direct class plus generalizations."""
        if view.class_name is None or view.class_name not in self._classes:
            return []
        return [view.class_name, *self.ancestors(view.class_name)]

    # -- conformance ---------------------------------------------------------

    def violations(self, view: ResourceView, class_name: str | None = None, *,
                   check_related: bool = True,
                   infinite_sample: int = 64) -> list[str]:
        """Return human-readable restriction violations (empty = conforms).

        Checks the view against ``class_name`` (default: the view's own
        class) *and all of its generalizations*. Infinite group parts are
        sampled up to ``infinite_sample`` members for restriction 4.
        """
        name = class_name if class_name is not None else view.class_name
        if name is None:
            return ["view has no resource view class"]
        problems: list[str] = []
        for cls_name in [name, *self.ancestors(name)]:
            problems.extend(
                self._check_one(view, self.get(cls_name),
                                check_related=check_related,
                                infinite_sample=infinite_sample)
            )
        return problems

    def conforms(self, view: ResourceView, class_name: str | None = None,
                 **kwargs: object) -> bool:
        """True when :meth:`violations` is empty."""
        return not self.violations(view, class_name, **kwargs)  # type: ignore[arg-type]

    def validate(self, view: ResourceView, class_name: str | None = None) -> None:
        """Raise :class:`ClassConformanceError` on the first violation."""
        problems = self.violations(view, class_name)
        if problems:
            raise ClassConformanceError(
                f"view {view.view_id} violates class "
                f"{class_name or view.class_name!r}: " + "; ".join(problems)
            )

    def _check_one(self, view: ResourceView, cls: ResourceViewClass, *,
                   check_related: bool, infinite_sample: int) -> list[str]:
        problems: list[str] = []
        prefix = f"[{cls.name}] "

        _check_emptiness(problems, prefix + "name", cls.name_emptiness,
                         view.name == "")
        tau = view.tuple_component
        _check_emptiness(problems, prefix + "tuple", cls.tuple_emptiness,
                         tau.is_empty)
        chi = view.content
        chi_empty = chi.is_finite and chi.is_empty
        _check_emptiness(problems, prefix + "content", cls.content_emptiness,
                         chi_empty)
        gamma = view.group
        _check_emptiness(problems, prefix + "group", cls.group_emptiness,
                         gamma.is_empty)

        if cls.exact_schema is not None:
            if tau.is_empty:
                problems.append(prefix + "tuple component is empty but a schema "
                                "is required")
            elif tau.schema != cls.exact_schema:
                problems.append(prefix + f"schema {tau.schema!r} differs from "
                                f"required {cls.exact_schema!r}")
        if cls.required_attributes is not None:
            if tau.is_empty:
                problems.append(prefix + "tuple component is empty but "
                                "attributes are required")
            else:
                for attr in cls.required_attributes:
                    if attr.name not in tau.schema:
                        problems.append(
                            prefix + f"missing required attribute {attr.name!r}"
                        )

        _check_finiteness(problems, prefix + "content", cls.content_finiteness,
                          is_finite=chi.is_finite, is_empty=chi_empty)
        _check_finiteness(problems, prefix + "group set",
                          cls.group_set_finiteness,
                          is_finite=gamma.set_part.is_finite,
                          is_empty=gamma.set_part.is_empty)
        _check_finiteness(problems, prefix + "group sequence",
                          cls.group_seq_finiteness,
                          is_finite=gamma.seq_part.is_finite,
                          is_empty=gamma.seq_part.is_empty)

        if check_related and cls.related_classes is not None:
            problems.extend(
                self._check_related(view, cls, prefix, infinite_sample)
            )
        return problems

    def _check_related(self, view: ResourceView, cls: ResourceViewClass,
                       prefix: str, infinite_sample: int) -> list[str]:
        problems: list[str] = []
        gamma = view.group
        members: Iterable[ResourceView]
        if gamma.is_finite:
            members = gamma.related()
        else:
            members = gamma.take(infinite_sample)
        for member in members:
            if member.class_name is None:
                if cls.require_related_classed:
                    problems.append(
                        prefix + f"related view {member.view_id} carries no class"
                    )
                continue
            if member.class_name not in self._classes:
                problems.append(
                    prefix + f"related view {member.view_id} has unknown class "
                    f"{member.class_name!r}"
                )
                continue
            if not any(self.is_subclass(member.class_name, allowed)
                       for allowed in cls.related_classes or ()):
                problems.append(
                    prefix + f"related view {member.view_id} has class "
                    f"{member.class_name!r}, expected one of "
                    f"{sorted(cls.related_classes or ())}"
                )
        return problems


def _check_emptiness(problems: list[str], label: str, rule: Emptiness,
                     is_empty: bool) -> None:
    if rule is Emptiness.EMPTY and not is_empty:
        problems.append(f"{label} component must be empty")
    elif rule is Emptiness.NON_EMPTY and is_empty:
        problems.append(f"{label} component must be non-empty")


def _check_finiteness(problems: list[str], label: str, rule: Finiteness, *,
                      is_finite: bool, is_empty: bool) -> None:
    if rule is Finiteness.ANY:
        return
    if rule is Finiteness.EMPTY and not is_empty:
        problems.append(f"{label} must be empty")
    elif rule is Finiteness.FINITE and not is_finite:
        problems.append(f"{label} must be finite")
    elif rule is Finiteness.FINITE_NON_EMPTY and (not is_finite or is_empty):
        problems.append(f"{label} must be finite and non-empty")
    elif rule is Finiteness.INFINITE and is_finite:
        problems.append(f"{label} must be infinite")


def build_builtin_registry() -> ClassRegistry:
    """Build a registry containing every class of the paper's Table 1.

    Also registers the document-structure and email classes that the
    evaluation queries (Table 4) reference.
    """
    registry = ClassRegistry()

    # --- files & folders (Section 3.2) ------------------------------------
    registry.register(ResourceViewClass(
        "file",
        name_emptiness=Emptiness.NON_EMPTY,
        required_attributes=W_FS,
        content_finiteness=Finiteness.FINITE,
        description="A file: name N_f, tuple (W_FS, T_f), content C_f.",
    ))
    registry.register(ResourceViewClass(
        "folder",
        name_emptiness=Emptiness.NON_EMPTY,
        required_attributes=W_FS,
        content_emptiness=Emptiness.EMPTY,
        group_seq_finiteness=Finiteness.EMPTY,
        related_classes=frozenset({"file", "folder"}),
        description="A folder: children (files or folders) in the group set S.",
    ))

    # --- relational data (Table 1) -----------------------------------------
    registry.register(ResourceViewClass(
        "tuple",
        name_emptiness=Emptiness.EMPTY,
        tuple_emptiness=Emptiness.NON_EMPTY,
        content_emptiness=Emptiness.EMPTY,
        group_emptiness=Emptiness.EMPTY,
        description="One relational tuple: tau = (W_R, t_i), all else empty.",
    ))
    registry.register(ResourceViewClass(
        "relation",
        name_emptiness=Emptiness.NON_EMPTY,
        tuple_emptiness=Emptiness.EMPTY,
        content_emptiness=Emptiness.EMPTY,
        group_seq_finiteness=Finiteness.EMPTY,
        related_classes=frozenset({"tuple"}),
        description="A relation: named set of tuple views in S.",
    ))
    registry.register(ResourceViewClass(
        "reldb",
        name_emptiness=Emptiness.NON_EMPTY,
        tuple_emptiness=Emptiness.EMPTY,
        content_emptiness=Emptiness.EMPTY,
        group_seq_finiteness=Finiteness.EMPTY,
        related_classes=frozenset({"relation"}),
        description="A relational database: named set of relation views in S.",
    ))

    # --- XML (Section 3.3) ---------------------------------------------------
    registry.register(ResourceViewClass(
        "xmltext",
        name_emptiness=Emptiness.EMPTY,
        tuple_emptiness=Emptiness.EMPTY,
        content_finiteness=Finiteness.FINITE,
        group_emptiness=Emptiness.EMPTY,
        description="A character information item: chi = C_t, all else empty.",
    ))
    registry.register(ResourceViewClass(
        "xmlelem",
        name_emptiness=Emptiness.NON_EMPTY,
        content_emptiness=Emptiness.EMPTY,
        group_set_finiteness=Finiteness.EMPTY,
        group_seq_finiteness=Finiteness.FINITE,
        related_classes=frozenset({"xmltext", "xmlelem"}),
        description="An element: name N_E, attributes in tau, children in Q.",
    ))
    registry.register(ResourceViewClass(
        "xmldoc",
        name_emptiness=Emptiness.EMPTY,
        tuple_emptiness=Emptiness.EMPTY,
        content_emptiness=Emptiness.EMPTY,
        group_set_finiteness=Finiteness.EMPTY,
        group_seq_finiteness=Finiteness.FINITE_NON_EMPTY,
        related_classes=frozenset({"xmlelem"}),
        description="A document: Q = <V_root^xmlelem>.",
    ))
    registry.register(ResourceViewClass(
        "xmlfile",
        parent="file",
        group_set_finiteness=Finiteness.EMPTY,
        group_seq_finiteness=Finiteness.FINITE_NON_EMPTY,
        related_classes=frozenset({"xmldoc"}),
        description="A file whose content parses as XML; Q = <V_doc^xmldoc>.",
    ))

    # --- data streams (Section 3.4) ------------------------------------------
    registry.register(ResourceViewClass(
        "datstream",
        name_emptiness=Emptiness.EMPTY,
        tuple_emptiness=Emptiness.EMPTY,
        content_emptiness=Emptiness.EMPTY,
        group_set_finiteness=Finiteness.EMPTY,
        group_seq_finiteness=Finiteness.INFINITE,
        description="A generic data stream: Q is an infinite view sequence.",
    ))
    registry.register(ResourceViewClass(
        "tupstream",
        parent="datstream",
        related_classes=frozenset({"tuple"}),
        description="A stream delivering relational tuples.",
    ))
    registry.register(ResourceViewClass(
        "rssatom",
        parent="datstream",
        related_classes=frozenset({"xmldoc"}),
        description="An RSS/ATOM stream delivering XML documents.",
    ))

    # --- LaTeX document structure (Section 2.3 / queries Q4-Q7) -------------
    registry.register(ResourceViewClass(
        "latexfile",
        parent="file",
        description="A file whose content parses as LaTeX; structural "
                    "subgraph hangs off the group component.",
    ))
    registry.register(ResourceViewClass(
        "latex_document",
        name_emptiness=Emptiness.ANY,
        description="The document environment of a LaTeX file.",
    ))
    registry.register(ResourceViewClass(
        "latex_section",
        name_emptiness=Emptiness.NON_EMPTY,
        description="A \\section or \\subsection: name = title, content = text.",
    ))
    registry.register(ResourceViewClass(
        "environment",
        name_emptiness=Emptiness.ANY,
        description="A LaTeX environment (\\begin{...}...\\end{...}).",
    ))
    registry.register(ResourceViewClass(
        "figure",
        parent="environment",
        description="A figure environment: caption text in content, "
                    "label in the tuple component.",
    ))
    registry.register(ResourceViewClass(
        "latex_meta",
        name_emptiness=Emptiness.NON_EMPTY,
        description="Document metadata extracted from a LaTeX preamble "
                    "(documentclass, title, abstract).",
    ))
    registry.register(ResourceViewClass(
        "latex_text",
        name_emptiness=Emptiness.EMPTY,
        tuple_emptiness=Emptiness.EMPTY,
        content_emptiness=Emptiness.NON_EMPTY,
        group_emptiness=Emptiness.EMPTY,
        description="A paragraph of LaTeX body text (the LaTeX analogue "
                    "of xmltext).",
    ))
    registry.register(ResourceViewClass(
        "texref",
        name_emptiness=Emptiness.NON_EMPTY,
        description="A \\ref{...}: name = referenced label; the group "
                    "component points at the target view (graph edge).",
    ))

    # --- email (Section 4.4.1) ------------------------------------------------
    registry.register(ResourceViewClass(
        "emailmessage",
        name_emptiness=Emptiness.NON_EMPTY,
        tuple_emptiness=Emptiness.NON_EMPTY,
        description="One message: name = subject, headers in tau, body in "
                    "content, attachments in the group component.",
    ))
    registry.register(ResourceViewClass(
        "emailfolder",
        name_emptiness=Emptiness.NON_EMPTY,
        related_classes=frozenset({"emailmessage", "emailfolder"}),
        description="An IMAP mailbox (Option 1, modelling the state).",
    ))
    registry.register(ResourceViewClass(
        "attachment",
        parent="file",
        description="An email attachment, exposed with file semantics.",
    ))

    # --- ActiveXML (Section 4.3.1) --------------------------------------------
    registry.register(ResourceViewClass(
        "sc",
        name_emptiness=Emptiness.NON_EMPTY,
        description="A web service call element of an ActiveXML document.",
    ))
    registry.register(ResourceViewClass(
        "scresult",
        description="The materialized result of a web service call.",
    ))
    registry.register(ResourceViewClass(
        "axml",
        parent="xmlelem",
        related_classes=frozenset({"sc", "scresult", "xmltext", "xmlelem"}),
        description="An ActiveXML element: Q = <V_sc [, V_scresult]>.",
    ))

    return registry


#: The registry with every built-in class. Most call sites share this
#: instance; tests needing isolation call :func:`build_builtin_registry`.
BUILTIN_REGISTRY = build_builtin_registry()
