"""Dataspace versioning — Section 8, issue (1), of the paper.

"A PDSMS keeps track of all changes made to the dataspace. As with
classical versioning techniques, logically, each change creates a new
version of the whole dataspace." Because iDM represents the entire
dataspace in one model, versioning reduces to a change log over view
records.

:class:`VersionStore` implements that: it records immutable
:class:`ViewRecord` snapshots of a view's components keyed by
``(view_id, version)``. Each commit of a batch of changes produces a new
dataspace version number; any historical version can be reconstructed as
the set of records visible at that version (standard temporal "valid
from/to" bookkeeping). The content of lazily/infinitely computed
components is summarized by a digest rather than copied, which keeps the
store applicable to intensional and stream views.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Iterator

from .errors import VersioningError
from .identity import ViewId
from .resource_view import ResourceView


def _content_digest(view: ResourceView, *, sample: int = 4096) -> str:
    """A stable digest of the content component (sampled when infinite)."""
    content = view.content
    text = content.text() if content.is_finite else content.take(sample)
    return hashlib.sha1(text.encode("utf-8", "replace")).hexdigest()


@dataclass(frozen=True)
class ViewRecord:
    """An immutable snapshot of one view's observable state."""

    view_id: ViewId
    name: str
    tuple_values: tuple[tuple[str, Any], ...]
    content_digest: str
    related_ids: tuple[ViewId, ...]
    class_name: str | None

    @classmethod
    def capture(cls, view: ResourceView, *,
                infinite_sample: int = 256) -> "ViewRecord":
        group = view.group
        if group.is_finite:
            related = tuple(v.view_id for v in group.related())
        else:
            related = tuple(v.view_id for v in group.take(infinite_sample))
        return cls(
            view_id=view.view_id,
            name=view.name,
            tuple_values=tuple(sorted(view.tuple_component.as_dict().items())),
            content_digest=_content_digest(view),
            related_ids=related,
            class_name=view.class_name,
        )


@dataclass
class _Entry:
    record: ViewRecord
    valid_from: int
    valid_to: int | None = None  # None = still current


class VersionStore:
    """A temporal store of view records with whole-dataspace versions.

    Usage: stage changes with :meth:`record` / :meth:`record_deletion`,
    then :meth:`commit` them; the commit returns the new version number.
    Reads (:meth:`get`, :meth:`snapshot`, :meth:`history`) accept any
    committed version.
    """

    def __init__(self) -> None:
        self._entries: dict[ViewId, list[_Entry]] = {}
        self._staged: dict[ViewId, ViewRecord | None] = {}
        self._version = 0

    @property
    def current_version(self) -> int:
        return self._version

    def record(self, view: ResourceView) -> None:
        """Stage the current state of ``view`` for the next commit.

        Unchanged views (identical record) are skipped, so repeatedly
        recording a stable dataspace does not create empty versions.
        """
        record = ViewRecord.capture(view)
        current = self._current_record(view.view_id)
        if current == record:
            self._staged.pop(view.view_id, None)
            return
        self._staged[view.view_id] = record

    def record_deletion(self, view_id: ViewId) -> None:
        """Stage the removal of a view."""
        if self._current_record(view_id) is None and view_id not in self._staged:
            raise VersioningError(f"cannot delete unknown view {view_id}")
        self._staged[view_id] = None

    def has_staged_changes(self) -> bool:
        return bool(self._staged)

    def commit(self) -> int:
        """Apply staged changes as one new dataspace version."""
        if not self._staged:
            return self._version
        self._version += 1
        for view_id, record in self._staged.items():
            history = self._entries.setdefault(view_id, [])
            if history and history[-1].valid_to is None:
                history[-1].valid_to = self._version
            if record is not None:
                history.append(_Entry(record, valid_from=self._version))
        self._staged.clear()
        return self._version

    # -- reads ---------------------------------------------------------------

    def _current_record(self, view_id: ViewId) -> ViewRecord | None:
        history = self._entries.get(view_id)
        if history and history[-1].valid_to is None:
            return history[-1].record
        return None

    def get(self, view_id: ViewId, version: int | None = None) -> ViewRecord:
        """The record of ``view_id`` at ``version`` (default: current)."""
        version = self._check_version(version)
        for entry in reversed(self._entries.get(view_id, [])):
            if entry.valid_from <= version and (
                entry.valid_to is None or entry.valid_to > version
            ):
                return entry.record
        raise VersioningError(
            f"view {view_id} does not exist at version {version}"
        )

    def exists(self, view_id: ViewId, version: int | None = None) -> bool:
        try:
            self.get(view_id, version)
            return True
        except VersioningError:
            return False

    def snapshot(self, version: int | None = None) -> dict[ViewId, ViewRecord]:
        """All records visible at ``version`` — one logical dataspace state."""
        version = self._check_version(version)
        out: dict[ViewId, ViewRecord] = {}
        for view_id, history in self._entries.items():
            for entry in reversed(history):
                if entry.valid_from <= version and (
                    entry.valid_to is None or entry.valid_to > version
                ):
                    out[view_id] = entry.record
                    break
        return out

    def history(self, view_id: ViewId) -> Iterator[tuple[int, ViewRecord]]:
        """Yield ``(version, record)`` for every change of one view."""
        for entry in self._entries.get(view_id, []):
            yield entry.valid_from, entry.record

    def changed_between(self, old: int, new: int) -> set[ViewId]:
        """Ids of views created, modified or deleted in ``(old, new]``."""
        self._check_version(old)
        self._check_version(new)
        changed: set[ViewId] = set()
        for view_id, history in self._entries.items():
            for entry in history:
                if old < entry.valid_from <= new:
                    changed.add(view_id)
                elif entry.valid_to is not None and old < entry.valid_to <= new:
                    changed.add(view_id)
        return changed

    def _check_version(self, version: int | None) -> int:
        if version is None:
            return self._version
        if not 0 <= version <= self._version:
            raise VersioningError(
                f"unknown version {version} (current is {self._version})"
            )
        return version
