"""The four components of a resource view (Definition 1 of the paper).

A resource view is a 4-tuple ``(eta, tau, chi, gamma)``:

* ``eta`` — the *name component*, a finite string;
* ``tau`` — the *tuple component*, a pair ``(W, T)`` of a schema and one
  tuple conforming to it;
* ``chi`` — the *content component*, a finite or infinite sequence of
  symbols;
* ``gamma`` — the *group component*, a pair ``(S, Q)`` of a set and an
  ordered sequence of resource views, each possibly infinite.

This module defines the component value types. They deliberately mirror
the paper's definitions: schemas are per-tuple (not per-set — schematic
information is added back via resource view classes), content is just a
symbol sequence, and the group component is the only source of graph
structure.

Infinite components are represented by *iterator factories*: a zero-
argument callable returning a fresh iterator. A factory may be consumed
many times (modelling the paper's "state" Option 1 for email) or be
marked single-shot (Option 2, a true stream whose items cannot be
retrieved twice).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date, datetime
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Sequence

from .errors import ComponentError, InfiniteComponentError, SchemaError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .resource_view import ResourceView


# ---------------------------------------------------------------------------
# Domains, attributes and schemas (the tuple component's W)
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class Domain:
    """A named set of atomic values, per the relational definitions in [19].

    ``python_types`` lists the Python types whose instances belong to the
    domain; membership of ``None`` is controlled by ``nullable``.
    """

    name: str
    python_types: tuple[type, ...]
    nullable: bool = True

    def contains(self, value: Any) -> bool:
        """Return True when ``value`` is an element of this domain."""
        if value is None:
            return self.nullable
        # bool is an int subclass; keep the domains disjoint.
        if isinstance(value, bool) and bool not in self.python_types:
            return False
        return isinstance(value, self.python_types)

    def __str__(self) -> str:
        return self.name


#: The atomic domains used throughout the library. The paper's examples
#: use integers, dates and strings; we add floats, booleans and bytes for
#: completeness (file metadata, scores, raw content digests).
STRING = Domain("string", (str,))
INTEGER = Domain("integer", (int,))
FLOAT = Domain("float", (float, int))
BOOLEAN = Domain("boolean", (bool,))
DATE = Domain("date", (date, datetime))
BYTES = Domain("bytes", (bytes,))
ANY = Domain("any", (object,))

_DOMAINS_BY_NAME = {
    d.name: d for d in (STRING, INTEGER, FLOAT, BOOLEAN, DATE, BYTES, ANY)
}


def domain_by_name(name: str) -> Domain:
    """Look up one of the built-in domains by its name."""
    try:
        return _DOMAINS_BY_NAME[name]
    except KeyError:
        raise ComponentError(f"unknown domain: {name!r}") from None


@dataclass(frozen=True, slots=True)
class Attribute:
    """An attribute is the name of a role played by some domain (Def. 1)."""

    name: str
    domain: Domain = STRING

    def __str__(self) -> str:
        return f"{self.name}: {self.domain}"


class Schema:
    """An ordered sequence of attributes — the ``W`` of a tuple component.

    Unlike the relational model, a schema is defined *per tuple*; sets of
    views sharing structure are described by resource view classes
    instead (Section 3 of the paper).
    """

    __slots__ = ("_attributes", "_positions")

    def __init__(self, attributes: Iterable[Attribute | tuple[str, Domain] | str]):
        normalized: list[Attribute] = []
        for attr in attributes:
            if isinstance(attr, Attribute):
                normalized.append(attr)
            elif isinstance(attr, tuple):
                name, domain = attr
                normalized.append(Attribute(name, domain))
            elif isinstance(attr, str):
                normalized.append(Attribute(attr, ANY))
            else:
                raise ComponentError(f"cannot build attribute from {attr!r}")
        self._attributes = tuple(normalized)
        self._positions = {a.name: i for i, a in enumerate(self._attributes)}
        if len(self._positions) != len(self._attributes):
            raise SchemaError("duplicate attribute names in schema")

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        return self._attributes

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self._attributes)

    def position(self, name: str) -> int:
        """Return the index of attribute ``name`` (raises SchemaError)."""
        try:
            return self._positions[name]
        except KeyError:
            raise SchemaError(f"no attribute named {name!r}") from None

    def __contains__(self, name: object) -> bool:
        return name in self._positions

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def validate(self, values: Sequence[Any]) -> None:
        """Raise :class:`SchemaError` unless ``values`` conforms to this schema."""
        if len(values) != len(self._attributes):
            raise SchemaError(
                f"expected {len(self._attributes)} values, got {len(values)}"
            )
        for attribute, value in zip(self._attributes, values):
            if not attribute.domain.contains(value):
                raise SchemaError(
                    f"value {value!r} is not in domain {attribute.domain} "
                    f"of attribute {attribute.name!r}"
                )

    def __repr__(self) -> str:
        inner = ", ".join(str(a) for a in self._attributes)
        return f"Schema({inner})"


class TupleComponent:
    """The ``tau`` component: one schema ``W`` and one conforming tuple ``T``.

    The empty tuple component (denoted ``()`` in the paper) is obtained
    from :meth:`empty` and answers True to :attr:`is_empty`.
    """

    __slots__ = ("_schema", "_values")

    def __init__(self, schema: Schema | None, values: Sequence[Any] | None):
        if (schema is None) != (values is None):
            raise ComponentError("schema and values must both be given or both omitted")
        if schema is not None and values is not None:
            schema.validate(values)
            self._schema: Schema | None = schema
            self._values: tuple[Any, ...] | None = tuple(values)
        else:
            self._schema = None
            self._values = None

    @classmethod
    def empty(cls) -> "TupleComponent":
        return cls(None, None)

    @classmethod
    def from_dict(cls, mapping: dict[str, Any],
                  domains: dict[str, Domain] | None = None) -> "TupleComponent":
        """Build a tuple component from a name→value mapping.

        Domains default to ANY unless overridden via ``domains``.
        """
        domains = domains or {}
        schema = Schema(
            Attribute(name, domains.get(name, ANY)) for name in mapping
        )
        return cls(schema, tuple(mapping.values()))

    @property
    def is_empty(self) -> bool:
        return self._schema is None

    @property
    def schema(self) -> Schema:
        if self._schema is None:
            raise ComponentError("empty tuple component has no schema")
        return self._schema

    @property
    def values(self) -> tuple[Any, ...]:
        if self._values is None:
            raise ComponentError("empty tuple component has no values")
        return self._values

    def get(self, attribute: str, default: Any = None) -> Any:
        """Return the value of ``attribute``, or ``default`` when absent."""
        if self._schema is None or attribute not in self._schema:
            return default
        return self._values[self._schema.position(attribute)]  # type: ignore[index]

    def __getitem__(self, attribute: str) -> Any:
        return self.values[self.schema.position(attribute)]

    def __contains__(self, attribute: object) -> bool:
        return self._schema is not None and attribute in self._schema

    def as_dict(self) -> dict[str, Any]:
        """Return the tuple as an attribute→value mapping (empty if empty)."""
        if self._schema is None:
            return {}
        return dict(zip(self._schema.names, self._values))  # type: ignore[arg-type]

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TupleComponent)
            and self._schema == other._schema
            and self._values == other._values
        )

    def __hash__(self) -> int:
        return hash((self._schema, self._values))

    def __repr__(self) -> str:
        if self.is_empty:
            return "TupleComponent.empty()"
        pairs = ", ".join(f"{k}={v!r}" for k, v in self.as_dict().items())
        return f"TupleComponent({pairs})"


# ---------------------------------------------------------------------------
# Content component (chi)
# ---------------------------------------------------------------------------

IteratorFactory = Callable[[], Iterator[str]]


class ContentComponent:
    """The ``chi`` component: a finite or infinite sequence of symbols.

    Finite content wraps a plain string. Infinite (or merely unbounded)
    content wraps an *iterator factory* — a callable returning a fresh
    iterator of symbols — so the sequence is produced lazily and may be
    re-read. A single-shot factory (``reusable=False``) models true
    streams whose symbols cannot be observed twice.
    """

    __slots__ = ("_text", "_factory", "_reusable", "_consumed")

    def __init__(self, text: str | None = None, *,
                 factory: IteratorFactory | None = None,
                 reusable: bool = True):
        if (text is None) == (factory is None):
            raise ComponentError("exactly one of text/factory must be given")
        self._text = text
        self._factory = factory
        self._reusable = reusable
        self._consumed = False

    @classmethod
    def empty(cls) -> "ContentComponent":
        return cls("")

    @classmethod
    def of(cls, text: str) -> "ContentComponent":
        return cls(text)

    @classmethod
    def infinite(cls, factory: IteratorFactory, *,
                 reusable: bool = True) -> "ContentComponent":
        """Wrap an iterator factory producing an unbounded symbol sequence."""
        return cls(factory=factory, reusable=reusable)

    @property
    def is_finite(self) -> bool:
        return self._text is not None

    @property
    def is_empty(self) -> bool:
        return self._text == ""

    def text(self) -> str:
        """Return the full content; only legal for finite content."""
        if self._text is None:
            raise InfiniteComponentError(
                "cannot materialize an infinite content component; use take()"
            )
        return self._text

    def __iter__(self) -> Iterator[str]:
        if self._text is not None:
            return iter(self._text)
        if self._consumed and not self._reusable:
            raise InfiniteComponentError(
                "single-shot content stream was already consumed"
            )
        self._consumed = True
        return self._factory()  # type: ignore[misc]

    def take(self, n: int) -> str:
        """Return the first ``n`` symbols (works for infinite content)."""
        out: list[str] = []
        for symbol in self:
            if len(out) >= n:
                break
            out.append(symbol)
        return "".join(out)

    def __len__(self) -> int:
        if self._text is None:
            raise InfiniteComponentError("infinite content has no length")
        return len(self._text)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ContentComponent):
            return NotImplemented
        if self.is_finite and other.is_finite:
            return self._text == other._text
        return self is other

    def __hash__(self) -> int:
        return hash(self._text) if self.is_finite else id(self)

    def __repr__(self) -> str:
        if self._text is not None:
            preview = self._text[:32]
            suffix = "..." if len(self._text) > 32 else ""
            return f"ContentComponent({preview!r}{suffix})"
        return "ContentComponent(<infinite>)"


# ---------------------------------------------------------------------------
# Group component (gamma)
# ---------------------------------------------------------------------------

ViewIteratorFactory = Callable[[], Iterator["ResourceView"]]


class ViewSequence:
    """A finite or infinite ordered collection of resource views.

    Used both for the set ``S`` and the sequence ``Q`` of a group
    component (for ``S`` the iteration order is an implementation
    artifact; only membership matters semantically).
    """

    __slots__ = ("_items", "_factory", "_reusable", "_consumed")

    def __init__(self, items: Sequence["ResourceView"] | None = None, *,
                 factory: ViewIteratorFactory | None = None,
                 reusable: bool = True):
        if items is not None and factory is not None:
            raise ComponentError("give items or a factory, not both")
        self._items = tuple(items) if items is not None else None
        self._factory = factory
        self._reusable = reusable
        self._consumed = False

    @classmethod
    def empty(cls) -> "ViewSequence":
        return cls(())

    @classmethod
    def of(cls, *views: "ResourceView") -> "ViewSequence":
        return cls(views)

    @classmethod
    def infinite(cls, factory: ViewIteratorFactory, *,
                 reusable: bool = True) -> "ViewSequence":
        return cls(factory=factory, reusable=reusable)

    @property
    def is_finite(self) -> bool:
        return self._items is not None

    @property
    def is_empty(self) -> bool:
        return self._items == ()

    def __iter__(self) -> Iterator["ResourceView"]:
        if self._items is not None:
            return iter(self._items)
        if self._consumed and not self._reusable:
            raise InfiniteComponentError(
                "single-shot view stream was already consumed"
            )
        self._consumed = True
        return self._factory()  # type: ignore[misc]

    def take(self, n: int) -> list["ResourceView"]:
        """Return the first ``n`` views (safe on infinite sequences)."""
        out: list["ResourceView"] = []
        for view in self:
            if len(out) >= n:
                break
            out.append(view)
        return out

    def items(self) -> tuple["ResourceView", ...]:
        """Return all views; only legal when finite."""
        if self._items is None:
            raise InfiniteComponentError(
                "cannot materialize an infinite view sequence; use take()"
            )
        return self._items

    def __len__(self) -> int:
        return len(self.items())

    def __repr__(self) -> str:
        if self._items is not None:
            return f"ViewSequence(<{len(self._items)} views>)"
        return "ViewSequence(<infinite>)"


@dataclass(slots=True)
class GroupComponent:
    """The ``gamma`` component: an unordered set ``S`` plus a sequence ``Q``.

    Connections induce the resource view graph: every view reachable
    through ``S`` or ``Q`` is *directly related* to the owner. The paper
    requires ``S`` and ``Q`` to be disjoint; we enforce this whenever both
    are finite (for infinite parts the constraint is the producer's
    obligation, since checking it would require materialization).
    """

    set_part: ViewSequence = field(default_factory=ViewSequence.empty)
    seq_part: ViewSequence = field(default_factory=ViewSequence.empty)

    def __post_init__(self) -> None:
        if self.set_part.is_finite and self.seq_part.is_finite:
            s_ids = {id(v) for v in self.set_part.items()}
            q_ids = {id(v) for v in self.seq_part.items()}
            if s_ids & q_ids:
                raise ComponentError("S and Q of a group component must be disjoint")

    @classmethod
    def empty(cls) -> "GroupComponent":
        return cls()

    @classmethod
    def of_set(cls, views: Iterable["ResourceView"]) -> "GroupComponent":
        return cls(set_part=ViewSequence(tuple(views)))

    @classmethod
    def of_sequence(cls, views: Iterable["ResourceView"]) -> "GroupComponent":
        return cls(seq_part=ViewSequence(tuple(views)))

    @classmethod
    def of_stream(cls, factory: ViewIteratorFactory, *,
                  reusable: bool = True) -> "GroupComponent":
        """A group component whose ``Q`` is an infinite stream of views."""
        return cls(seq_part=ViewSequence.infinite(factory, reusable=reusable))

    @property
    def is_empty(self) -> bool:
        return self.set_part.is_empty and self.seq_part.is_empty

    @property
    def is_finite(self) -> bool:
        return self.set_part.is_finite and self.seq_part.is_finite

    def __iter__(self) -> Iterator["ResourceView"]:
        """Iterate all directly related views: first S, then Q."""
        yield from self.set_part
        yield from self.seq_part

    def take(self, n: int) -> list["ResourceView"]:
        """First ``n`` related views, never materializing infinite parts."""
        out = self.set_part.take(n)
        if len(out) < n:
            out.extend(self.seq_part.take(n - len(out)))
        return out

    def related(self) -> tuple["ResourceView", ...]:
        """All directly related views; requires finiteness."""
        return tuple(self.set_part.items()) + tuple(self.seq_part.items())

    def __len__(self) -> int:
        return len(self.set_part) + len(self.seq_part)

    def __repr__(self) -> str:
        return f"GroupComponent(S={self.set_part!r}, Q={self.seq_part!r})"
