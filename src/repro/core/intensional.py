"""Intensional components — Section 4.3 of the paper.

Extensional components return base facts (bytes on disk, catalog rows);
intensional components require *query processing*: evaluating a local
query or calling a remote service. On the logical iDM level a
materialized result is still intensional data — materialization is an
orthogonal, physical concern. This module captures that distinction:

* :class:`IntensionalGroup` / :class:`IntensionalContent` wrap a
  computation and expose it as a group/content provider suitable for a
  lazy :class:`~repro.core.resource_view.ResourceView`. Each records
  whether it has been *materialized* (cached) and how often it was
  computed.
* :class:`ServiceRegistry` simulates the remote-web-service world used by
  the ActiveXML use-case (Section 4.3.1): named endpoints mapping call
  arguments to results, with an invocation log.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from .components import ContentComponent, GroupComponent
from .errors import IdmError
from .resource_view import ResourceView


class IntensionalContent:
    """A content component computed by a query.

    ``provider`` runs the computation; with ``materialize=True`` the
    first result is cached (a materialized view in the paper's sense —
    still logically intensional). ``computations`` counts actual runs.
    """

    def __init__(self, provider: Callable[[], str], *, materialize: bool = True):
        self._provider = provider
        self._materialize = materialize
        self._cache: str | None = None
        self.computations = 0

    def __call__(self) -> ContentComponent:
        if self._cache is not None:
            return ContentComponent.of(self._cache)
        self.computations += 1
        result = self._provider()
        if self._materialize:
            self._cache = result
        return ContentComponent.of(result)

    @property
    def is_materialized(self) -> bool:
        return self._cache is not None

    def invalidate(self) -> None:
        """Drop the materialization; the next access recomputes."""
        self._cache = None


class IntensionalGroup:
    """A group component computed by a query over other views.

    The canonical example is a database view defined over base tables, or
    a saved iQL query whose results form a dynamic folder. ``provider``
    must return the member views; they are exposed through the group's
    set part (result order is not semantically meaningful unless the
    caller opts into ``ordered=True``).
    """

    def __init__(self, provider: Callable[[], Iterable[ResourceView]], *,
                 materialize: bool = True, ordered: bool = False):
        self._provider = provider
        self._materialize = materialize
        self._ordered = ordered
        self._cache: tuple[ResourceView, ...] | None = None
        self.computations = 0

    def __call__(self) -> GroupComponent:
        members = self._members()
        if self._ordered:
            return GroupComponent.of_sequence(members)
        return GroupComponent.of_set(members)

    def _members(self) -> Sequence[ResourceView]:
        if self._cache is not None:
            return self._cache
        self.computations += 1
        result = tuple(self._provider())
        if self._materialize:
            self._cache = result
        return result

    @property
    def is_materialized(self) -> bool:
        return self._cache is not None

    def invalidate(self) -> None:
        self._cache = None


def intensional_view(name: str,
                     provider: Callable[[], Iterable[ResourceView]], *,
                     materialize: bool = True,
                     class_name: str | None = None) -> ResourceView:
    """A view whose members are the (lazily computed) result of a query.

    This models the paper's "dynamic folder" / saved-search use-case: the
    view looks like a folder, but its children are recomputed from the
    provider (or served from the materialization).
    """
    return ResourceView(
        name=name,
        group=IntensionalGroup(provider, materialize=materialize),
        class_name=class_name,
    )


class ServiceError(IdmError):
    """A simulated web service call failed (unknown endpoint, handler error)."""


class ServiceRegistry:
    """A simulated remote-service world for intensional components.

    The paper's ActiveXML use-case embeds calls like
    ``web.server.com/GetDepartments()`` in documents. Since this
    reproduction runs offline, endpoints are plain Python callables
    registered under their URL; every invocation is logged so tests can
    assert *when* a service was called (lazily, once, ...).
    """

    def __init__(self) -> None:
        self._endpoints: dict[str, Callable[..., Any]] = {}
        self.call_log: list[tuple[str, tuple[Any, ...]]] = []

    def register(self, url: str,
                 handler: Callable[..., Any]) -> Callable[..., Any]:
        """Register ``handler`` under ``url``; returns the handler so the
        method can be used as a decorator factory target."""
        self._endpoints[url] = handler
        return handler

    def endpoints(self) -> list[str]:
        return sorted(self._endpoints)

    def call(self, url: str, *args: Any) -> Any:
        """Invoke the endpoint, recording the call."""
        try:
            handler = self._endpoints[url]
        except KeyError:
            raise ServiceError(f"unknown service endpoint: {url!r}") from None
        self.call_log.append((url, args))
        return handler(*args)

    def calls_to(self, url: str) -> int:
        return sum(1 for logged_url, _ in self.call_log if logged_url == url)
