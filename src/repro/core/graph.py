"""Resource view graph utilities.

The group components of resource views induce an arbitrary directed
graph: trees (classic files&folders), DAGs (a view referenced from two
parents, like the paper's ``V_Preliminaries``) and cycles (the
``V_Projects -> V_PIM -> V_All Projects -> V_Projects`` folder-link cycle
of Figure 1). This module provides traversals that are safe on all three
shapes and bounded on infinite group components.

The paper's *indirectly related* relation (``V_i ->> V_k``) is the
transitive closure of *directly related*; :func:`is_indirectly_related`
and :func:`descendants` compute it.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, Iterator

from .errors import GraphError
from .identity import ViewId
from .resource_view import ResourceView

#: How many members of an infinite group part a traversal samples before
#: moving on. Traversals over streams are necessarily approximations;
#: callers needing more control pass ``infinite_sample`` explicitly.
DEFAULT_INFINITE_SAMPLE = 256


def children(view: ResourceView, *,
             infinite_sample: int = DEFAULT_INFINITE_SAMPLE) -> list[ResourceView]:
    """The views directly related to ``view`` (bounded on infinite groups)."""
    group = view.group
    if group.is_finite:
        return list(group.related())
    return group.take(infinite_sample)


def traverse(
    roots: ResourceView | Iterable[ResourceView],
    *,
    order: str = "bfs",
    max_depth: int | None = None,
    max_views: int | None = None,
    infinite_sample: int = DEFAULT_INFINITE_SAMPLE,
) -> Iterator[tuple[ResourceView, int]]:
    """Yield ``(view, depth)`` pairs reachable from ``roots``.

    Cycle-safe: each view (keyed by its id) is visited at most once.
    ``order`` is ``"bfs"`` or ``"dfs"``; ``max_depth`` bounds edge
    distance from the roots, ``max_views`` the total yield count.
    """
    if order not in ("bfs", "dfs"):
        raise GraphError(f"unknown traversal order: {order!r}")
    if isinstance(roots, ResourceView):
        roots = [roots]
    queue: deque[tuple[ResourceView, int]] = deque((r, 0) for r in roots)
    seen: set[ViewId] = set()
    yielded = 0
    while queue:
        view, depth = queue.popleft() if order == "bfs" else queue.pop()
        if view.view_id in seen:
            continue
        seen.add(view.view_id)
        yield view, depth
        yielded += 1
        if max_views is not None and yielded >= max_views:
            return
        if max_depth is not None and depth >= max_depth:
            continue
        for child in children(view, infinite_sample=infinite_sample):
            if child.view_id not in seen:
                queue.append((child, depth + 1))


def descendants(root: ResourceView, **kwargs: object) -> list[ResourceView]:
    """All views indirectly related to ``root`` (excluding ``root`` itself,
    unless it lies on a cycle through itself)."""
    out = []
    for view, depth in traverse(root, **kwargs):  # type: ignore[arg-type]
        if depth > 0:
            out.append(view)
    return out


def is_indirectly_related(source: ResourceView, target: ResourceView,
                          **kwargs: object) -> bool:
    """``V_i ->> V_k``: is there a non-empty path of direct relations?

    Starts from the source's children so that a view on a cycle through
    itself is correctly indirectly related to itself.
    """
    sample = kwargs.get("infinite_sample", DEFAULT_INFINITE_SAMPLE)
    starts = children(source, infinite_sample=int(sample))  # type: ignore[arg-type]
    for view, _ in traverse(starts, **kwargs):  # type: ignore[arg-type]
        if view.view_id == target.view_id:
            return True
    return False


def find_by_name(roots: ResourceView | Iterable[ResourceView], name: str,
                 **kwargs: object) -> list[ResourceView]:
    """All reachable views whose name component equals ``name``."""
    return [v for v, _ in traverse(roots, **kwargs)  # type: ignore[arg-type]
            if v.name == name]


def find(roots: ResourceView | Iterable[ResourceView],
         predicate: Callable[[ResourceView], bool],
         **kwargs: object) -> list[ResourceView]:
    """All reachable views satisfying ``predicate``."""
    return [v for v, _ in traverse(roots, **kwargs)  # type: ignore[arg-type]
            if predicate(v)]


def count_views(roots: ResourceView | Iterable[ResourceView],
                **kwargs: object) -> int:
    """Number of distinct reachable views."""
    return sum(1 for _ in traverse(roots, **kwargs))  # type: ignore[arg-type]


def has_cycle(root: ResourceView, *,
              infinite_sample: int = DEFAULT_INFINITE_SAMPLE) -> bool:
    """True when a directed cycle is reachable from ``root``.

    Iterative three-color DFS (white/grey/black) keyed on view ids.
    """
    WHITE, GREY, BLACK = 0, 1, 2
    color: dict[ViewId, int] = {}
    stack: list[tuple[ResourceView, Iterator[ResourceView]]] = []

    def push(view: ResourceView) -> None:
        color[view.view_id] = GREY
        stack.append((view, iter(children(view, infinite_sample=infinite_sample))))

    push(root)
    while stack:
        view, child_iter = stack[-1]
        advanced = False
        for child in child_iter:
            state = color.get(child.view_id, WHITE)
            if state == GREY:
                return True
            if state == WHITE:
                push(child)
                advanced = True
                break
        if not advanced:
            color[view.view_id] = BLACK
            stack.pop()
    return False


def paths_between(source: ResourceView, target: ResourceView, *,
                  max_paths: int = 100, max_depth: int = 32,
                  infinite_sample: int = DEFAULT_INFINITE_SAMPLE,
                  ) -> list[list[ResourceView]]:
    """Enumerate simple paths from ``source`` to ``target`` (bounded).

    Used by tests to verify DAG-shaped sharing (a view reachable along
    two distinct paths, like ``V_Preliminaries`` in Figure 1(b)).
    """
    results: list[list[ResourceView]] = []
    path: list[ResourceView] = [source]
    on_path: set[ViewId] = {source.view_id}

    def walk(view: ResourceView, depth: int) -> None:
        if len(results) >= max_paths or depth > max_depth:
            return
        if view.view_id == target.view_id and len(path) > 1:
            results.append(list(path))
            return
        for child in children(view, infinite_sample=infinite_sample):
            if child.view_id in on_path:
                if child.view_id == target.view_id:
                    results.append(list(path) + [child])
                continue
            path.append(child)
            on_path.add(child.view_id)
            walk(child, depth + 1)
            on_path.discard(child.view_id)
            path.pop()

    for child in children(source, infinite_sample=infinite_sample):
        if child.view_id == target.view_id:
            results.append([source, child])
            continue
        path.append(child)
        on_path.add(child.view_id)
        walk(child, 1)
        on_path.discard(child.view_id)
        path.pop()
    return results[:max_paths]


def to_dot(roots: ResourceView | Iterable[ResourceView], *,
           max_views: int = 500,
           infinite_sample: int = DEFAULT_INFINITE_SAMPLE) -> str:
    """Render the reachable subgraph in Graphviz DOT format.

    Node labels carry the name component and class; edges distinguish
    set (solid) from sequence (dashed, ordered) membership.
    """
    if isinstance(roots, ResourceView):
        roots = [roots]
    lines = ["digraph idm {", "  rankdir=TB;", "  node [shape=box];"]
    included: dict[ViewId, str] = {}
    order: list[ResourceView] = []
    for view, _ in traverse(roots, max_views=max_views,
                            infinite_sample=infinite_sample):
        node = f"n{len(included)}"
        included[view.view_id] = node
        order.append(view)
        label = view.name.replace('"', r'\"') or "(unnamed)"
        if view.class_name:
            label += f"\\n[{view.class_name}]"
        lines.append(f'  {node} [label="{label}"];')
    for view in order:
        source = included[view.view_id]
        group = view.group
        set_members = (group.set_part.items() if group.set_part.is_finite
                       else group.set_part.take(infinite_sample))
        for member in set_members:
            node = included.get(member.view_id)
            if node:
                lines.append(f"  {source} -> {node};")
        seq_members = (group.seq_part.items() if group.seq_part.is_finite
                       else group.seq_part.take(infinite_sample))
        for position, member in enumerate(seq_members):
            node = included.get(member.view_id)
            if node:
                lines.append(
                    f'  {source} -> {node} [style=dashed, label="{position}"];'
                )
    lines.append("}")
    return "\n".join(lines)


def collect_index(roots: ResourceView | Iterable[ResourceView],
                  **kwargs: object) -> dict[ViewId, ResourceView]:
    """Materialize the reachable subgraph as an id→view mapping."""
    return {v.view_id: v
            for v, _ in traverse(roots, **kwargs)}  # type: ignore[arg-type]


def _xml_escape(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
                .replace(">", "&gt;").replace('"', "&quot;"))


def to_graphml(roots: ResourceView | Iterable[ResourceView], *,
               max_views: int = 500,
               infinite_sample: int = DEFAULT_INFINITE_SAMPLE) -> str:
    """Render the reachable subgraph as GraphML.

    Nodes carry ``name`` and ``class`` attributes; edges carry ``part``
    ("set" or "seq") and, for sequence edges, ``position``. The output
    loads in yEd/Gephi/networkx for inspection of dataspace structure.
    """
    if isinstance(roots, ResourceView):
        roots = [roots]
    lines = [
        '<?xml version="1.0" encoding="UTF-8"?>',
        '<graphml xmlns="http://graphml.graphdrawing.org/xmlns">',
        '  <key id="name" for="node" attr.name="name" attr.type="string"/>',
        '  <key id="class" for="node" attr.name="class" attr.type="string"/>',
        '  <key id="part" for="edge" attr.name="part" attr.type="string"/>',
        '  <key id="position" for="edge" attr.name="position"'
        ' attr.type="int"/>',
        '  <graph edgedefault="directed">',
    ]
    included: dict[ViewId, str] = {}
    order: list[ResourceView] = []
    for view, _ in traverse(roots, max_views=max_views,
                            infinite_sample=infinite_sample):
        node = f"n{len(included)}"
        included[view.view_id] = node
        order.append(view)
        lines.append(f'    <node id="{node}">')
        lines.append(f'      <data key="name">{_xml_escape(view.name)}'
                     "</data>")
        if view.class_name:
            lines.append(
                f'      <data key="class">{_xml_escape(view.class_name)}'
                "</data>"
            )
        lines.append("    </node>")
    edge_ordinal = 0
    for view in order:
        source = included[view.view_id]
        group = view.group
        set_members = (group.set_part.items() if group.set_part.is_finite
                       else group.set_part.take(infinite_sample))
        for member in set_members:
            target = included.get(member.view_id)
            if target:
                lines.append(
                    f'    <edge id="e{edge_ordinal}" source="{source}"'
                    f' target="{target}"><data key="part">set</data></edge>'
                )
                edge_ordinal += 1
        seq_members = (group.seq_part.items() if group.seq_part.is_finite
                       else group.seq_part.take(infinite_sample))
        for position, member in enumerate(seq_members):
            target = included.get(member.view_id)
            if target:
                lines.append(
                    f'    <edge id="e{edge_ordinal}" source="{source}"'
                    f' target="{target}"><data key="part">seq</data>'
                    f'<data key="position">{position}</data></edge>'
                )
                edge_ordinal += 1
    lines.append("  </graph>")
    lines.append("</graphml>")
    return "\n".join(lines)
