"""Lazy component evaluation (Section 4.1 of the paper).

Every component of a resource view may be computed on demand: the paper
models a view as an interface of four ``get*Component`` methods that hide
how, when and where each component is produced. :class:`LazyValue` is the
mechanism behind that interface — a memoizing thunk. A component given as
a plain value is wrapped in an already-forced :class:`LazyValue`; a
component given as a zero-argument callable is forced at most once, on
first access.

:class:`CountingProvider` wraps a provider and counts invocations; tests
and benchmarks use it to assert laziness ("the LaTeX file is only parsed
when getGroupComponent() is called").

The tracing layer (:mod:`repro.trace`) observes materializations through
a per-thread *sink*: while a sink is installed, every first-force of a
*labelled* lazy value reports ``component.<label>.materialized`` to it.
With no sink installed (the default, and the common case outside traced
query executions) the only cost is one attribute check on the first
force — already-forced values never consult the sink at all.
"""

from __future__ import annotations

from contextvars import ContextVar, Token
from typing import Any, Callable, Generic, Protocol, TypeVar

T = TypeVar("T")

_UNSET = object()


class MaterializationSink(Protocol):  # pragma: no cover - typing only
    def count(self, name: str, amount: int = 1) -> None: ...


#: The active sink, if any. A ``ContextVar`` keeps installations local to
#: the installing thread (each service worker traces its own query).
_SINK: ContextVar[MaterializationSink | None] = ContextVar(
    "idm-materialization-sink", default=None
)


def install_materialization_sink(sink: MaterializationSink) -> Token:
    """Route this thread's materialization events to ``sink``; returns a
    token for :func:`uninstall_materialization_sink`."""
    return _SINK.set(sink)


def uninstall_materialization_sink(token: Token) -> None:
    _SINK.reset(token)


class LazyValue(Generic[T]):
    """A memoizing thunk: computes its value at most once.

    ``LazyValue.of(value)`` builds an already-forced instance carrying a
    plain value; ``LazyValue(provider)`` defers to ``provider()`` on the
    first :meth:`get`. A ``label`` marks the value as an observable
    component ("name", "content", ...): its first force is reported to
    the installed materialization sink, if any.
    """

    __slots__ = ("_provider", "_value", "label")

    def __init__(self, provider: Callable[[], T],
                 label: str | None = None):
        self._provider: Callable[[], T] | None = provider
        self._value: Any = _UNSET
        self.label = label

    @classmethod
    def of(cls, value: T) -> "LazyValue[T]":
        lazy: LazyValue[T] = cls.__new__(cls)
        lazy._provider = None
        lazy._value = value
        lazy.label = None
        return lazy

    @property
    def is_forced(self) -> bool:
        """True once the value has been computed (or was given eagerly)."""
        return self._value is not _UNSET

    def get(self) -> T:
        """Return the value, computing and caching it on first access."""
        if self._value is _UNSET:
            assert self._provider is not None
            if self.label is not None:
                sink = _SINK.get()
                if sink is not None:
                    sink.count(f"component.{self.label}.materialized")
            self._value = self._provider()
            self._provider = None  # allow the closure to be collected
        return self._value

    def __repr__(self) -> str:
        if self.is_forced:
            return f"LazyValue({self._value!r})"
        return "LazyValue(<unforced>)"


class CountingProvider(Generic[T]):
    """A provider wrapper that counts how many times it was invoked.

    Because :class:`LazyValue` memoizes, a lazily-declared component
    should report ``calls == 0`` until first access and ``calls == 1``
    afterwards — the invariant the laziness tests assert.
    """

    __slots__ = ("_provider", "calls")

    def __init__(self, provider: Callable[[], T]):
        self._provider = provider
        self.calls = 0

    def __call__(self) -> T:
        self.calls += 1
        return self._provider()
