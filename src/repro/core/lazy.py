"""Lazy component evaluation (Section 4.1 of the paper).

Every component of a resource view may be computed on demand: the paper
models a view as an interface of four ``get*Component`` methods that hide
how, when and where each component is produced. :class:`LazyValue` is the
mechanism behind that interface — a memoizing thunk. A component given as
a plain value is wrapped in an already-forced :class:`LazyValue`; a
component given as a zero-argument callable is forced at most once, on
first access.

:class:`CountingProvider` wraps a provider and counts invocations; tests
and benchmarks use it to assert laziness ("the LaTeX file is only parsed
when getGroupComponent() is called").

The tracing layer (:mod:`repro.trace`) observes materializations through
a per-thread *sink*: while a sink is installed, every first-force of a
*labelled* lazy value reports ``component.<label>.materialized`` to it.
With no sink installed (the default, and the common case outside traced
query executions) the only cost is one attribute check on the first
force — already-forced values never consult the sink at all.
"""

from __future__ import annotations

from contextvars import ContextVar, Token
from typing import Any, Callable, Generic, Protocol, TypeVar

from .errors import ProviderFailed

T = TypeVar("T")

_UNSET = object()


class MaterializationSink(Protocol):  # pragma: no cover - typing only
    def count(self, name: str, amount: int = 1) -> None: ...


#: The active sink, if any. A ``ContextVar`` keeps installations local to
#: the installing thread (each service worker traces its own query).
_SINK: ContextVar[MaterializationSink | None] = ContextVar(
    "idm-materialization-sink", default=None
)


def install_materialization_sink(sink: MaterializationSink) -> Token:
    """Route this thread's materialization events to ``sink``; returns a
    token for :func:`uninstall_materialization_sink`."""
    return _SINK.set(sink)


def uninstall_materialization_sink(token: Token) -> None:
    _SINK.reset(token)


class LazyValue(Generic[T]):
    """A memoizing thunk: computes its value at most once.

    ``LazyValue.of(value)`` builds an already-forced instance carrying a
    plain value; ``LazyValue(provider)`` defers to ``provider()`` on the
    first :meth:`get`. A ``label`` marks the value as an observable
    component ("name", "content", ...): its first force is reported to
    the installed materialization sink, if any.

    A provider that raises does **not** poison the value: the failure is
    recorded (:attr:`is_failed`, :attr:`last_error`) and the next
    :meth:`get` forces again, up to ``max_attempts`` total attempts.
    After that the lazy raises :class:`ProviderFailed` immediately
    instead of hammering a source that keeps failing.
    """

    #: Bounded re-forcing: total provider attempts before a lazy gives
    #: up and raises :class:`ProviderFailed` without calling it again.
    DEFAULT_MAX_ATTEMPTS = 3

    __slots__ = ("_provider", "_value", "label", "_failures",
                 "_last_error", "max_attempts")

    def __init__(self, provider: Callable[[], T],
                 label: str | None = None,
                 max_attempts: int | None = None):
        self._provider: Callable[[], T] | None = provider
        self._value: Any = _UNSET
        self.label = label
        self._failures = 0
        self._last_error: BaseException | None = None
        self.max_attempts = (max_attempts if max_attempts is not None
                             else self.DEFAULT_MAX_ATTEMPTS)

    @classmethod
    def of(cls, value: T) -> "LazyValue[T]":
        lazy: LazyValue[T] = cls.__new__(cls)
        lazy._provider = None
        lazy._value = value
        lazy.label = None
        lazy._failures = 0
        lazy._last_error = None
        lazy.max_attempts = cls.DEFAULT_MAX_ATTEMPTS
        return lazy

    @property
    def is_forced(self) -> bool:
        """True once the value has been computed (or was given eagerly)."""
        return self._value is not _UNSET

    @property
    def is_failed(self) -> bool:
        """True while the last forcing attempt raised (and no later
        attempt succeeded)."""
        return self._value is _UNSET and self._failures > 0

    @property
    def failures(self) -> int:
        """How many forcing attempts have raised so far."""
        return self._failures

    @property
    def last_error(self) -> BaseException | None:
        """The most recent provider exception, if any."""
        return self._last_error

    def get(self) -> T:
        """Return the value, computing and caching it on first access.

        A raising provider propagates its exception and leaves the
        value unforced-but-failed; the next call re-forces, up to
        ``max_attempts`` attempts in total.
        """
        if self._value is _UNSET:
            if self._failures >= self.max_attempts:
                raise ProviderFailed(
                    f"component provider failed {self._failures} times; "
                    "not retrying"
                ) from self._last_error
            assert self._provider is not None
            try:
                value = self._provider()
            except Exception as error:
                self._failures += 1
                self._last_error = error
                raise
            if self.label is not None:
                sink = _SINK.get()
                if sink is not None:
                    sink.count(f"component.{self.label}.materialized")
            self._value = value
            self._provider = None  # allow the closure to be collected
            self._last_error = None
        return self._value

    def __repr__(self) -> str:
        if self.is_forced:
            return f"LazyValue({self._value!r})"
        if self.is_failed:
            return f"LazyValue(<failed {self._failures}x>)"
        return "LazyValue(<unforced>)"


class CountingProvider(Generic[T]):
    """A provider wrapper that counts how many times it was invoked.

    Because :class:`LazyValue` memoizes, a lazily-declared component
    should report ``calls == 0`` until first access and ``calls == 1``
    afterwards — the invariant the laziness tests assert.
    """

    __slots__ = ("_provider", "calls")

    def __init__(self, provider: Callable[[], T]):
        self._provider = provider
        self.calls = 0

    def __call__(self) -> T:
        self.calls += 1
        return self._provider()
