"""Stable identities for resource views.

The paper models resource views as pure values; a running PDSMS, however,
needs stable identifiers to register views in the catalog, build indexes
over their components and track lineage across transformations. iMeMex
assigns each view an identifier derived from the data source that exposes
it (the paper's Resource View Catalog registers "all resource views
managed"). We reproduce that with :class:`ViewId`: a small value object
``(authority, path)`` where *authority* names the data source ("fs",
"imap", "rss", "mem", ...) and *path* locates the view inside it.

Derived views (e.g. the XML elements extracted from a file's content
component) extend their parent's path with a fragment, mirroring how the
Content2iDM converters address subgraphs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class ViewId:
    """A stable, hashable identifier for one resource view.

    ``authority`` names the subsystem that exposes the view (for example
    ``"fs"`` for the filesystem plugin or ``"imap"`` for the email
    plugin); ``path`` is an authority-local locator. Together they are
    unique across the dataspace.
    """

    authority: str
    path: str

    def child(self, fragment: str) -> "ViewId":
        """Return the id of a view derived from this one.

        Used by content converters: the views extracted from the content
        of ``fs:/a/b.tex`` get ids like ``fs:/a/b.tex#sec0``.
        """
        separator = "#" if "#" not in self.path else "/"
        return ViewId(self.authority, f"{self.path}{separator}{fragment}")

    @property
    def uri(self) -> str:
        """The canonical string form, e.g. ``imap://INBOX/42``."""
        return f"{self.authority}://{self.path}"

    @classmethod
    def parse(cls, uri: str) -> "ViewId":
        """Parse a canonical ``authority://path`` string back into an id."""
        authority, separator, path = uri.partition("://")
        if not separator or not authority:
            raise ValueError(f"not a view id uri: {uri!r}")
        return cls(authority, path)

    def __str__(self) -> str:
        return self.uri


class IdGenerator:
    """Generates fresh ids under one authority.

    Anonymous, in-memory views (query results, stream items without a
    natural locator) receive sequential ids from a generator. Generators
    are deterministic: a fresh generator always yields the same sequence,
    which keeps test fixtures and benchmarks reproducible.
    """

    def __init__(self, authority: str = "mem") -> None:
        self.authority = authority
        self._counter = itertools.count()

    def next_id(self, prefix: str = "v") -> ViewId:
        """Return the next fresh id, e.g. ``mem://v17``."""
        return ViewId(self.authority, f"{prefix}{next(self._counter)}")


#: Library-wide generator for anonymous views. Code that needs
#: reproducible ids should create its own :class:`IdGenerator`.
DEFAULT_ID_GENERATOR = IdGenerator()
