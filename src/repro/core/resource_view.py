"""Resource views — Definition 1 of the paper.

A resource view ``V_i`` is a 4-tuple ``(eta_i, tau_i, chi_i, gamma_i)``
of a name, a tuple, a content and a group component. This module provides
the :class:`ResourceView` class, which

* exposes the four components through the paper's interface
  (``get_name_component`` ... ``get_group_component``) as well as through
  Python properties,
* accepts each component either as a plain value or as a zero-argument
  callable, making every component lazily computable (Section 4.1),
* carries a stable :class:`~repro.core.identity.ViewId` and an optional
  resource view class name (Section 3.1).

Construction is deliberately permissive about input shapes: names may be
``None`` (the empty name), tuple components may be given as dicts,
contents as strings, groups as iterables of views. Normalization happens
once in the constructor so the rest of the library deals with the proper
component types only.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Union

from .components import (
    ContentComponent,
    GroupComponent,
    TupleComponent,
    ViewSequence,
)
from .errors import ComponentError
from .identity import DEFAULT_ID_GENERATOR, ViewId
from .lazy import LazyValue

NameInput = Union[str, None, Callable[[], Union[str, None]]]
TupleInput = Union[TupleComponent, Mapping[str, Any], None,
                   Callable[[], Union[TupleComponent, Mapping[str, Any], None]]]
ContentInput = Union[ContentComponent, str, None,
                     Callable[[], Union[ContentComponent, str, None]]]
GroupInput = Union[GroupComponent, Iterable["ResourceView"], None,
                   Callable[[], Union[GroupComponent, Iterable["ResourceView"], None]]]


def _normalize_name(value: str | None) -> str:
    if value is None:
        return ""
    if not isinstance(value, str):
        raise ComponentError(f"name component must be a string, got {type(value)}")
    return value


def _normalize_tuple(value: TupleComponent | Mapping[str, Any] | None) -> TupleComponent:
    if value is None:
        return TupleComponent.empty()
    if isinstance(value, TupleComponent):
        return value
    if isinstance(value, Mapping):
        if not value:
            return TupleComponent.empty()
        return TupleComponent.from_dict(dict(value))
    raise ComponentError(f"cannot build a tuple component from {type(value)}")


def _normalize_content(value: ContentComponent | str | None) -> ContentComponent:
    if value is None:
        return ContentComponent.empty()
    if isinstance(value, ContentComponent):
        return value
    if isinstance(value, str):
        return ContentComponent.of(value)
    raise ComponentError(f"cannot build a content component from {type(value)}")


def _normalize_group(
    value: GroupComponent | Iterable["ResourceView"] | None,
) -> GroupComponent:
    if value is None:
        return GroupComponent.empty()
    if isinstance(value, GroupComponent):
        return value
    if isinstance(value, ViewSequence):
        return GroupComponent(seq_part=value)
    views = tuple(value)
    for view in views:
        if not isinstance(view, ResourceView):
            raise ComponentError(
                f"group component members must be resource views, got {type(view)}"
            )
    return GroupComponent.of_set(views)


def _lazify(value: Any, normalize: Callable[[Any], Any],
            label: str | None = None) -> LazyValue[Any]:
    if callable(value) and not isinstance(
        value, (TupleComponent, ContentComponent, GroupComponent)
    ):
        # labelled so the tracing layer can observe the materialization
        return LazyValue(lambda: normalize(value()), label)
    return LazyValue.of(normalize(value))


class ResourceView:
    """One node of the resource view graph.

    Each of the four components may be passed as a plain value (eager) or
    as a zero-argument callable (lazy, computed once on first access).
    ``class_name`` attaches the view to a resource view class ("a given
    resource view may obey directly to only one class"); ``view_id``
    identifies the view in the catalog and defaults to a fresh anonymous
    id.
    """

    __slots__ = ("view_id", "class_name", "_name", "_tuple", "_content", "_group")

    def __init__(
        self,
        name: NameInput = None,
        tuple_component: TupleInput = None,
        content: ContentInput = None,
        group: GroupInput = None,
        *,
        class_name: str | None = None,
        view_id: ViewId | None = None,
    ) -> None:
        self.view_id = view_id if view_id is not None else DEFAULT_ID_GENERATOR.next_id()
        self.class_name = class_name
        self._name = _lazify(name, _normalize_name, "name")
        self._tuple = _lazify(tuple_component, _normalize_tuple, "tuple")
        self._content = _lazify(content, _normalize_content, "content")
        self._group = _lazify(group, _normalize_group, "group")

    # -- the paper's interface ---------------------------------------------

    def get_name_component(self) -> str:
        """Return ``eta`` — the (possibly empty) name string."""
        return self._name.get()

    def get_tuple_component(self) -> TupleComponent:
        """Return ``tau`` — schema plus one conforming tuple."""
        return self._tuple.get()

    def get_content_component(self) -> ContentComponent:
        """Return ``chi`` — the finite or infinite symbol sequence."""
        return self._content.get()

    def get_group_component(self) -> GroupComponent:
        """Return ``gamma`` — the set/sequence of directly related views."""
        return self._group.get()

    # -- pythonic accessors -------------------------------------------------

    @property
    def name(self) -> str:
        return self.get_name_component()

    @property
    def tuple_component(self) -> TupleComponent:
        return self.get_tuple_component()

    @property
    def content(self) -> ContentComponent:
        return self.get_content_component()

    @property
    def group(self) -> GroupComponent:
        return self.get_group_component()

    # -- laziness introspection ----------------------------------------------

    def forced_components(self) -> dict[str, bool]:
        """Which components have been computed so far (for tests/inspection)."""
        return {
            "name": self._name.is_forced,
            "tuple": self._tuple.is_forced,
            "content": self._content.is_forced,
            "group": self._group.is_forced,
        }

    # -- graph helpers --------------------------------------------------------

    def directly_related(self) -> Iterator["ResourceView"]:
        """Iterate the views this view is directly related to (``V_i -> V_k``)."""
        return iter(self.group)

    def is_directly_related(self, other: "ResourceView") -> bool:
        """True when ``other`` appears in this view's group component.

        Only inspects finite group parts; infinite parts are sampled up
        to a bounded prefix (they are streams — membership is generally
        undecidable).
        """
        group = self.group
        if group.is_finite:
            return any(v is other or v.view_id == other.view_id
                       for v in group.related())
        return any(v is other or v.view_id == other.view_id
                   for v in group.take(10_000))

    def attribute(self, name: str, default: Any = None) -> Any:
        """Shortcut: value of a tuple-component attribute."""
        return self.tuple_component.get(name, default)

    def text(self) -> str:
        """Shortcut: the finite content text (empty string when no content)."""
        return self.content.text()

    def __repr__(self) -> str:
        label = self.name if self._name.is_forced else "<lazy>"
        cls = f", class={self.class_name!r}" if self.class_name else ""
        return f"ResourceView({label!r}, id={self.view_id}{cls})"


def view(name: str | None = None, **kwargs: Any) -> ResourceView:
    """Convenience constructor mirroring the paper's shorthand notation.

    ``view("PIM", tuple_component={...}, group=[...])`` builds the
    ``V_PIM = ('PIM', tau_PIM, gamma_PIM)`` of the paper's Section 2.3,
    with omitted components empty.
    """
    return ResourceView(name=name, **kwargs)
