"""Exception hierarchy for the iDM reproduction.

All exceptions raised by this library derive from :class:`IdmError`, so
callers may catch a single base class. Subsystems define narrower types
here rather than in their own modules so that the hierarchy stays visible
in one place.
"""

from __future__ import annotations


class IdmError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ComponentError(IdmError):
    """A resource-view component is malformed or used incorrectly."""


class SchemaError(ComponentError):
    """A tuple component's values do not conform to its schema."""


class InfiniteComponentError(ComponentError):
    """An operation requiring finiteness was applied to an infinite component."""


class ClassConformanceError(IdmError):
    """A resource view violates the restrictions of a resource view class."""


class UnknownClassError(IdmError):
    """A resource view class name is not present in the registry."""


class GraphError(IdmError):
    """A structural error in a resource view graph."""


class ParseError(IdmError):
    """Base class for parser failures (XML, LaTeX, iQL, feeds, messages)."""

    def __init__(self, message: str, *, line: int | None = None,
                 column: int | None = None) -> None:
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(message + location)
        self.line = line
        self.column = column


class XmlParseError(ParseError):
    """The XML parser rejected its input."""


class LatexParseError(ParseError):
    """The LaTeX structure parser rejected its input."""


class QueryError(IdmError):
    """Base class for iQL errors."""


class QuerySyntaxError(QueryError, ParseError):
    """The iQL parser rejected the query text."""


class QueryPlanError(QueryError):
    """A logical plan could not be converted into an executable plan."""


class QueryExecutionError(QueryError):
    """A runtime failure while executing a query plan."""


class StreamingUnsupportedError(QueryExecutionError):
    """The query has no streaming plan shape (currently: joins).

    Raised by ``execute_iter()``/``query_iter()`` so callers can fall
    back to the materialized path without swallowing real execution
    failures.
    """


class StaleDictionaryError(QueryExecutionError):
    """A URI-dictionary key could not be resolved consistently.

    Raised when an execution's dictionary view cannot place a
    late-arriving URI between its neighbours (the gap between two
    sort keys is exhausted) — the caller should retry on a fresh
    view, which the next execution gets automatically after the
    dictionary remaps.
    """


class StoreError(IdmError):
    """Base class for the embedded relational store."""


class TableError(StoreError):
    """A table-level failure (duplicate key, unknown column, ...)."""


class IndexError_(StoreError):
    """An index-level failure in the embedded store.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class FullTextError(IdmError):
    """A failure inside the full-text engine."""


class DurabilityError(IdmError):
    """A failure in the durability layer (WAL, checkpoint, recovery).

    Torn WAL tails are *not* errors — they are truncated on open; this
    is raised for conditions that would silently lose acknowledged
    data, such as corruption in a non-final segment or an unreadable
    checkpoint.
    """


class DataSourceError(IdmError):
    """A data-source plugin failed to enumerate or fetch items."""


class TransientSourceError(DataSourceError):
    """A data source failed in a way that may succeed on retry.

    The resilience engine (``repro.resilience``) retries these with
    backoff; anything else raised by a plugin is treated as permanent
    for the current call.
    """


class SourceTimeout(TransientSourceError):
    """A data-source call exceeded its (real or simulated) deadline."""


class SourceUnavailable(DataSourceError):
    """A data source is (currently) unreachable.

    Raised when retries on a source are exhausted or its circuit
    breaker is open. Carries the authority so degradation reports can
    name the source, and ``retry_after`` (seconds) when a breaker knows
    its cool-down.
    """

    def __init__(self, message: str, *, authority: str | None = None,
                 retry_after: float | None = None) -> None:
        super().__init__(message)
        self.authority = authority
        self.retry_after = retry_after


class ProviderFailed(ComponentError):
    """A lazy component's provider kept failing.

    Raised by :class:`~repro.core.lazy.LazyValue` once its bounded
    re-forcing budget is spent; chains the provider's last error.
    """


class VfsError(DataSourceError):
    """Virtual filesystem failure (missing path, duplicate entry, ...)."""


class ImapError(DataSourceError):
    """Simulated IMAP server failure."""


class FeedError(DataSourceError):
    """RSS/ATOM feed failure."""


class SyncError(IdmError):
    """The synchronization manager hit an unrecoverable inconsistency."""


class VersioningError(IdmError):
    """Dataspace versioning failure (unknown version, conflict, ...)."""


class LineageError(IdmError):
    """Lineage tracking failure (unknown view, cyclic derivation, ...)."""


class ServiceError(IdmError):
    """Base class for the concurrent query service (``repro.service``)."""


class Overloaded(ServiceError):
    """The service's admission controller rejected a request.

    Raised when the bounded request queue is full; carries the depth the
    controller saw so clients can report or back off.
    """

    def __init__(self, message: str, *, queued: int | None = None,
                 limit: int | None = None) -> None:
        super().__init__(message)
        self.queued = queued
        self.limit = limit


class DeadlineExceeded(ServiceError):
    """A query missed its deadline (in queue or mid-execution)."""


class QueryCancelled(ServiceError):
    """A query was cooperatively cancelled before it completed."""


class ServiceClosed(ServiceError):
    """The service is shut down (or draining) and accepts no new work."""


class ShardUnavailable(ServiceError):
    """A supervised shard cannot serve right now.

    Raised by ``repro.supervise`` while a shard worker is recovering
    from a crash, or fail-fast once its restart circuit breaker opened
    after repeated crash-looping. Carries the shard index and, when the
    breaker knows its cool-down, ``retry_after`` seconds.
    """

    def __init__(self, message: str, *, shard: int | None = None,
                 retry_after: float | None = None) -> None:
        super().__init__(message)
        self.shard = shard
        self.retry_after = retry_after


class WireError(ServiceError):
    """A malformed frame on the supervisor/worker control pipe.

    Oversized lengths, truncated payloads and undecodable JSON raise
    this on the *reading* side; the supervisor treats it as a worker
    failure (the stream is unrecoverable once framing is lost).
    """
