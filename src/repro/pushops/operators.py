"""Composable push operators.

Operators form pipelines: each processes an incoming change event (or
value) immediately and pushes results to its downstream operators —
data-driven processing "in the spirit of specialized data stream
management systems" as the paper puts it.

An operator subscribes to a :class:`~repro.pushops.bus.PushBus` with
:meth:`PushOperator.attach`, or receives values directly via
:meth:`PushOperator.push` when composed into a pipeline.
"""

from __future__ import annotations

from typing import Any, Callable

from .bus import ChangeEvent, ComponentKind, PushBus
from .window import CountWindow


class PushOperator:
    """Base class: receives values, pushes derived values downstream."""

    def __init__(self) -> None:
        self._downstream: list["PushOperator"] = []
        self.received = 0

    def connect(self, operator: "PushOperator") -> "PushOperator":
        """Wire ``operator`` downstream; returns it for chaining."""
        self._downstream.append(operator)
        return operator

    def attach(self, bus: PushBus, *,
               component: ComponentKind | None = None) -> Callable[[], None]:
        """Subscribe this operator to a bus (events become inputs)."""
        return bus.subscribe(self.push, component=component)

    def push(self, value: Any) -> None:
        """Receive one value; default behavior forwards unchanged."""
        self.received += 1
        self._process(value)

    def _process(self, value: Any) -> None:
        self._emit(value)

    def _emit(self, value: Any) -> None:
        for operator in self._downstream:
            operator.push(value)


class FilterOperator(PushOperator):
    """Forwards only values satisfying the predicate."""

    def __init__(self, predicate: Callable[[Any], bool]):
        super().__init__()
        self.predicate = predicate
        self.passed = 0

    def _process(self, value: Any) -> None:
        if self.predicate(value):
            self.passed += 1
            self._emit(value)


class MapOperator(PushOperator):
    """Forwards ``function(value)``."""

    def __init__(self, function: Callable[[Any], Any]):
        super().__init__()
        self.function = function

    def _process(self, value: Any) -> None:
        self._emit(self.function(value))


class WindowAggregate(PushOperator):
    """Maintains a count window and emits an aggregate on every push.

    ``aggregate`` maps the window's items to one output value (count,
    mean, max, a custom reducer).
    """

    def __init__(self, capacity: int,
                 aggregate: Callable[[list[Any]], Any] = len):
        super().__init__()
        self.window = CountWindow(capacity)
        self.aggregate = aggregate

    def _process(self, value: Any) -> None:
        self.window.push(value)
        self._emit(self.aggregate(self.window.items()))


class JoinOperator(PushOperator):
    """A symmetric hash join over two windowed input streams.

    Values arrive through :meth:`push_left` / :meth:`push_right`; each
    new value probes the opposite window on its join key and emits
    ``(left, right)`` pairs immediately (classic symmetric hash join,
    the streaming analogue of the paper's user-defined joins).
    """

    def __init__(self, left_key: Callable[[Any], Any],
                 right_key: Callable[[Any], Any], *, window: int = 1024):
        super().__init__()
        self.left_key = left_key
        self.right_key = right_key
        self._left = CountWindow(window)
        self._right = CountWindow(window)

    def push(self, value: Any) -> None:  # pragma: no cover - guidance
        raise TypeError("use push_left/push_right on a JoinOperator")

    def push_left(self, value: Any) -> None:
        self.received += 1
        self._left.push(value)
        key = self.left_key(value)
        for candidate in self._right:
            if self.right_key(candidate) == key:
                self._emit((value, candidate))

    def push_right(self, value: Any) -> None:
        self.received += 1
        self._right.push(value)
        key = self.right_key(value)
        for candidate in self._left:
            if self.left_key(candidate) == key:
                self._emit((candidate, value))

    def left_input(self) -> Callable[[Any], None]:
        return self.push_left

    def right_input(self) -> Callable[[Any], None]:
        return self.push_right


class CollectSink(PushOperator):
    """Terminal operator collecting everything it receives."""

    def __init__(self) -> None:
        super().__init__()
        self.items: list[Any] = []

    def _process(self, value: Any) -> None:
        self.items.append(value)


class CountingSink(PushOperator):
    """Terminal operator counting (but not keeping) values."""

    def __init__(self) -> None:
        super().__init__()
        self.count = 0

    def _process(self, value: Any) -> None:
        self.count += 1


def pipeline(*operators: PushOperator) -> PushOperator:
    """Wire operators in a chain; returns the head (push into it)."""
    if not operators:
        raise ValueError("pipeline needs at least one operator")
    for upstream, downstream in zip(operators, operators[1:]):
        upstream.connect(downstream)
    return operators[0]
