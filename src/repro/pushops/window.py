"""Stream windows.

Infinite group components cannot be materialized; windows hold the
bounded recent slice operators work over — the paper's Replica&Indexes
module "manages infinite group components using a stream window".
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterator


class CountWindow:
    """A sliding window of the most recent ``capacity`` items."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("window capacity must be positive")
        self.capacity = capacity
        self._items: deque[Any] = deque(maxlen=capacity)
        self.total_seen = 0

    def push(self, item: Any) -> Any | None:
        """Add an item; returns the evicted item, if any."""
        evicted = None
        if len(self._items) == self.capacity:
            evicted = self._items[0]
        self._items.append(item)
        self.total_seen += 1
        return evicted

    def items(self) -> list[Any]:
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)

    @property
    def is_full(self) -> bool:
        return len(self._items) == self.capacity
