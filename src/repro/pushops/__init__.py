"""Push-based stream processing (Section 4.4.2 of the paper).

"In order to efficiently support stream processing, any system
implementing iDM graphs has to provide push-based protocols. ... Our
push-operators may register for changes on any of the components of a
resource view. Incoming change events ... will then be passed to all
subscribed push-operators. They will process those events immediately."

This package provides that machinery: a change-event bus keyed by view
and component, composable push operators (filter, map, window
aggregates, stream join) and sinks, in the spirit of the DSMS
literature the paper cites (Aurora [1]).
"""

from .bus import ChangeEvent, ChangeKind, ComponentKind, PushBus
from .operators import (
    CollectSink,
    CountingSink,
    FilterOperator,
    JoinOperator,
    MapOperator,
    PushOperator,
    WindowAggregate,
)
from .window import CountWindow

__all__ = [
    "ChangeEvent", "ChangeKind", "ComponentKind", "PushBus",
    "CollectSink", "CountingSink", "FilterOperator", "JoinOperator",
    "MapOperator", "PushOperator", "WindowAggregate", "CountWindow",
]
