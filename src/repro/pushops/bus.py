"""The change-event bus.

Producers (data-source plugins, the synchronization manager, stream
sources) publish :class:`ChangeEvent`\\ s; push operators subscribe by
component kind and optionally by view id. Delivery is synchronous and
in subscription order.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable

from .. import obs
from ..core.identity import ViewId


class ComponentKind(enum.Enum):
    """Which of the four components an event concerns."""

    NAME = "name"
    TUPLE = "tuple"
    CONTENT = "content"
    GROUP = "group"


class ChangeKind(enum.Enum):
    ADDED = "added"          # a new view / new group member appeared
    MODIFIED = "modified"    # a component's value changed
    REMOVED = "removed"


@dataclass(frozen=True, slots=True)
class ChangeEvent:
    """One change on one component of one resource view.

    ``payload`` carries the event's data — a new group member view, a
    tuple component, a content fragment — whatever the producer deems
    useful for immediate processing (the consumer may always go back to
    the view through the catalog).
    """

    view_id: ViewId
    component: ComponentKind
    kind: ChangeKind
    payload: Any = None


Subscriber = Callable[[ChangeEvent], None]


class PushBus:
    """Routes change events to subscribed push operators."""

    def __init__(self) -> None:
        # (component or None) -> list of (view filter or None, callback)
        self._subscriptions: list[
            tuple[ComponentKind | None, ViewId | None, Subscriber]
        ] = []
        self.delivered = 0

    def subscribe(self, callback: Subscriber, *,
                  component: ComponentKind | None = None,
                  view_id: ViewId | None = None) -> Callable[[], None]:
        """Subscribe to events, optionally narrowed by component and view.

        Returns an unsubscribe function.
        """
        entry = (component, view_id, callback)
        self._subscriptions.append(entry)

        def unsubscribe() -> None:
            try:
                self._subscriptions.remove(entry)
            except ValueError:
                pass

        return unsubscribe

    def publish(self, event: ChangeEvent) -> int:
        """Deliver ``event``; returns the number of receivers."""
        receivers = 0
        for component, view_id, callback in list(self._subscriptions):
            if component is not None and component is not event.component:
                continue
            if view_id is not None and view_id != event.view_id:
                continue
            callback(event)
            receivers += 1
        self.delivered += receivers
        if obs.enabled():
            obs.increment("sync.bus.events")
            if receivers:
                obs.increment("sync.bus.deliveries", receivers)
        return receivers
